//! The trace-driven simulator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use webcache_core::{AdmissionRule, Cache, PolicySpec, ReplacementPolicy};
use webcache_trace::{ByteSize, DenseTrace, DocumentType, Trace, TypeMap};

use crate::metrics::HitStats;
use crate::observe::{AccessEvent, AccessKind, NoopObserver, Observer, RunMeta};
use crate::occupancy::{OccupancySample, OccupancySeries};

/// How the simulator interprets a size change between two successive
/// requests to the same document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModificationRule {
    /// The paper's rule (Section 4.1): a change **< 5%** is a document
    /// modification (miss, cached copy invalidated); a larger change is an
    /// interrupted transfer (cached copy stays valid).
    #[default]
    SizeDelta,
    /// The rule of Jin & Bestavros [7, 8]: **every** size change is a
    /// modification. Inflates modification rates for large multi-media
    /// and application documents (kept for the ablation experiment).
    AnyChange,
}

impl ModificationRule {
    /// Whether a transfer-size change from `prev` to `cur` bytes counts
    /// as a document modification.
    pub fn is_modification(self, prev: u64, cur: u64) -> bool {
        if prev == cur {
            return false;
        }
        match self {
            ModificationRule::AnyChange => true,
            ModificationRule::SizeDelta => {
                if prev == 0 {
                    // A zero-byte previous transfer has no meaningful
                    // relative delta: any growth reads as a ≥100% change,
                    // i.e. an interrupted transfer, never a modification.
                    return false;
                }
                let rel = (cur as f64 - prev as f64).abs() / prev as f64;
                rel < 0.05
            }
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Cache capacity in bytes.
    pub capacity: ByteSize,
    /// Fraction of the trace used to warm the cache (not counted).
    /// The paper uses 10%.
    pub warmup_fraction: f64,
    /// Modification-detection rule.
    pub modification_rule: ModificationRule,
    /// Admission rule applied in front of the store (default: admit
    /// everything, as in the paper).
    pub admission_rule: AdmissionRule,
    /// Number of occupancy snapshots to take over the measured part of
    /// the trace (0 disables the Figure 1 series).
    pub occupancy_samples: usize,
}

impl SimulationConfig {
    /// The paper's defaults: 10% warm-up, 5%-delta modification rule, no
    /// occupancy sampling.
    pub fn new(capacity: ByteSize) -> Self {
        SimulationConfig {
            capacity,
            warmup_fraction: 0.10,
            modification_rule: ModificationRule::default(),
            admission_rule: AdmissionRule::default(),
            occupancy_samples: 0,
        }
    }

    /// Starts a builder pre-loaded with the paper's defaults (10%
    /// warm-up, [`ModificationRule::SizeDelta`], admit-everything, no
    /// occupancy sampling). Only the capacity must be supplied.
    ///
    /// ```
    /// use webcache_sim::{ModificationRule, SimulationConfig};
    /// use webcache_trace::ByteSize;
    ///
    /// let config = SimulationConfig::builder()
    ///     .capacity(ByteSize::from_mib(256))
    ///     .occupancy_samples(50)
    ///     .build();
    /// assert_eq!(config.warmup_fraction, 0.10);
    /// assert_eq!(config.modification_rule, ModificationRule::SizeDelta);
    /// ```
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::default()
    }
}

/// Builder for [`SimulationConfig`]; see [`SimulationConfig::builder`].
///
/// The plain struct stays fully constructible by hand — the builder only
/// packages the paper's defaults so call sites state nothing but their
/// deviations.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulationConfigBuilder {
    capacity: Option<ByteSize>,
    warmup_fraction: Option<f64>,
    modification_rule: Option<ModificationRule>,
    admission_rule: Option<AdmissionRule>,
    occupancy_samples: Option<usize>,
}

impl SimulationConfigBuilder {
    /// Sets the cache capacity (required).
    #[must_use]
    pub fn capacity(mut self, capacity: ByteSize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the warm-up fraction (default 0.10).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    #[must_use]
    pub fn warmup_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warm-up fraction must be in [0, 1)"
        );
        self.warmup_fraction = Some(fraction);
        self
    }

    /// Sets the modification rule (default [`ModificationRule::SizeDelta`]).
    #[must_use]
    pub fn modification_rule(mut self, rule: ModificationRule) -> Self {
        self.modification_rule = Some(rule);
        self
    }

    /// Sets the admission rule (default: admit everything).
    #[must_use]
    pub fn admission_rule(mut self, rule: AdmissionRule) -> Self {
        self.admission_rule = Some(rule);
        self
    }

    /// Sets the number of occupancy snapshots (default 0 — disabled).
    #[must_use]
    pub fn occupancy_samples(mut self, samples: usize) -> Self {
        self.occupancy_samples = Some(samples);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if no capacity was set.
    pub fn build(self) -> SimulationConfig {
        let capacity = self
            .capacity
            .expect("SimulationConfig::builder() requires .capacity(..)");
        let mut config = SimulationConfig::new(capacity);
        if let Some(f) = self.warmup_fraction {
            config.warmup_fraction = f;
        }
        if let Some(r) = self.modification_rule {
            config.modification_rule = r;
        }
        if let Some(r) = self.admission_rule {
            config.admission_rule = r;
        }
        if let Some(s) = self.occupancy_samples {
            config.occupancy_samples = s;
        }
        config
    }
}

impl SimulationConfig {
    /// Overrides the admission rule.
    #[must_use]
    pub fn with_admission_rule(mut self, rule: AdmissionRule) -> Self {
        self.admission_rule = rule;
        self
    }

    /// Enables occupancy sampling with the given number of snapshots.
    #[must_use]
    pub fn with_occupancy_samples(mut self, samples: usize) -> Self {
        self.occupancy_samples = samples;
        self
    }

    /// Overrides the modification rule.
    #[must_use]
    pub fn with_modification_rule(mut self, rule: ModificationRule) -> Self {
        self.modification_rule = rule;
        self
    }

    /// Overrides the warm-up fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    #[must_use]
    pub fn with_warmup_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warm-up fraction must be in [0, 1)"
        );
        self.warmup_fraction = fraction;
        self
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Label of the replacement policy (e.g. `"GD*(P)"`).
    pub policy: String,
    /// Configuration the run used.
    pub config: SimulationConfig,
    /// Counters per document type.
    by_type: TypeMap<HitStats>,
    /// Occupancy trajectory (empty unless sampling was enabled).
    pub occupancy: OccupancySeries,
}

impl SimulationReport {
    /// Assembles a report from already-merged counters (the concurrent
    /// driver's merge path; the occupancy series stays empty there).
    pub(crate) fn from_parts(
        policy: String,
        config: SimulationConfig,
        by_type: TypeMap<HitStats>,
    ) -> SimulationReport {
        SimulationReport {
            policy,
            config,
            by_type,
            occupancy: OccupancySeries::new(),
        }
    }

    /// Aggregated counters over all document types.
    pub fn overall(&self) -> HitStats {
        let mut total = HitStats::default();
        for (_, s) in self.by_type.iter() {
            total += *s;
        }
        total
    }

    /// Per-type counters.
    pub fn by_type(&self) -> &TypeMap<HitStats> {
        &self.by_type
    }
}

/// Sentinel in the dense last-transfer table: document never fetched.
pub(crate) const NO_TRANSFER: u64 = u64::MAX;

/// Default batch size of [`Simulator::run_dense_batched`].
///
/// Heap-maintenance deferral amortizes over the batch, while the
/// modification pre-pass still fits comfortably in L1; 64–256 measure
/// within noise of each other, so the midpoint is baked in.
pub const DEFAULT_BATCH_SIZE: usize = 128;

/// Drives a [`Cache`] over a [`Trace`] and accounts per-type hit rates.
///
/// See the [crate docs](crate) for the methodology. [`Simulator::run`]
/// replays through the hash-free dense path ([`DenseTrace`] +
/// [`Cache::with_dense_slots`]); [`Simulator::run_hashed`] keeps the
/// sparse-id path alive, primarily so tests can check the two agree.
#[derive(Debug)]
pub struct Simulator {
    policy: Box<dyn ReplacementPolicy>,
    config: SimulationConfig,
    /// Flight-recorder seam: handed to the cache so admission verdicts
    /// push their reasons for the
    /// [`FlightObserver`](crate::flight::FlightObserver) to pair with
    /// insert/reject events.
    admit_reasons: Option<webcache_obs::ReasonChannel>,
}

impl Simulator {
    /// Creates a simulator that will drive a fresh cache.
    pub fn new(policy: Box<dyn ReplacementPolicy>, config: SimulationConfig) -> Self {
        Simulator {
            policy,
            config,
            admit_reasons: None,
        }
    }

    /// Creates a simulator from a composed [`PolicySpec`] (or a bare
    /// [`PolicyKind`](webcache_core::PolicyKind)) — the redesigned entry
    /// point. A spec-level admission filter overrides
    /// [`SimulationConfig::admission_rule`]; a bare replacement spec
    /// keeps the config's rule (see [`PolicySpec::admission_or`]).
    pub fn from_spec(spec: impl Into<PolicySpec>, config: SimulationConfig) -> Self {
        let spec = spec.into();
        let mut config = config;
        config.admission_rule = spec.admission_or(config.admission_rule);
        Simulator {
            policy: spec.build(),
            config,
            admit_reasons: None,
        }
    }

    /// Like [`Simulator::from_spec`], but building the replacement
    /// policy with [`PolicySpec::build_instrumented`] so its internal
    /// events (heap costs, inflation, eviction reasons) reach `sink`.
    pub fn from_spec_instrumented<M: webcache_obs::MetricsSink>(
        spec: impl Into<PolicySpec>,
        config: SimulationConfig,
        sink: M,
    ) -> Self {
        let spec = spec.into();
        let mut config = config;
        config.admission_rule = spec.admission_or(config.admission_rule);
        Simulator {
            policy: spec.build_instrumented(sink),
            config,
            admit_reasons: None,
        }
    }

    /// Routes admission-verdict reasons into `reasons` (see
    /// [`Cache::set_admit_reasons`]): one push per Inserted or
    /// RejectedByAdmission outcome, in observer-event order.
    pub fn set_admit_reasons(&mut self, reasons: webcache_obs::ReasonChannel) {
        self.admit_reasons = Some(reasons);
    }

    /// How many requests to skip for warm-up and how often to sample
    /// occupancy, for a trace of `len` requests.
    fn schedule(&self, len: usize) -> (usize, usize) {
        let warmup_end = ((len as f64) * self.config.warmup_fraction).floor() as usize;
        let measured = len.saturating_sub(warmup_end);
        let sample_every = if self.config.occupancy_samples > 0 && measured > 0 {
            (measured / self.config.occupancy_samples).max(1)
        } else {
            usize::MAX
        };
        (warmup_end, sample_every)
    }

    /// Runs the full trace and produces the report.
    ///
    /// Builds the [`DenseTrace`] view and replays it. Sweeps that run one
    /// trace many times should build the view once and call
    /// [`Simulator::run_dense`] directly.
    pub fn run(self, trace: &Trace) -> SimulationReport {
        self.run_observed(trace, &mut NoopObserver)
    }

    /// Like [`Simulator::run`], but streams every event into `observer`.
    pub fn run_observed<O: Observer>(self, trace: &Trace, observer: &mut O) -> SimulationReport {
        let dense = DenseTrace::build(trace);
        self.run_dense_observed(&dense, observer)
    }

    /// Replays a pre-built dense trace view (the sweep hot path).
    ///
    /// Per-document simulator state is vector-indexed by the trace's
    /// dense slots; no hash is computed per request.
    pub fn run_dense(self, trace: &DenseTrace) -> SimulationReport {
        self.run_dense_observed(trace, &mut NoopObserver)
    }

    /// Like [`Simulator::run_dense`], but streams every event into
    /// `observer`.
    ///
    /// The observer is a generic parameter, so with [`NoopObserver`] this
    /// monomorphizes to exactly the unobserved loop — the hooks cost
    /// nothing unless an observer actually uses them. Events carry the
    /// **dense slot** as the document id (see
    /// [`AccessEvent`](crate::observe::AccessEvent)).
    pub fn run_dense_observed<O: Observer>(
        self,
        trace: &DenseTrace,
        observer: &mut O,
    ) -> SimulationReport {
        let (warmup_end, sample_every) = self.schedule(trace.len());
        observer.on_run_start(RunMeta {
            total_requests: trace.len(),
            warmup_end,
            capacity: self.config.capacity,
        });
        let mut cache = Cache::with_dense_slots(
            self.config.capacity,
            self.policy,
            self.config.admission_rule,
            trace.distinct_documents(),
        );
        if let Some(reasons) = self.admit_reasons {
            cache.set_admit_reasons(reasons);
        }
        let mut last_transfer: Vec<u64> = vec![NO_TRANSFER; trace.distinct_documents()];

        let mut by_type: TypeMap<HitStats> = TypeMap::default();
        let mut occupancy = OccupancySeries::new();

        let slots = trace.docs();
        let sizes = trace.sizes();
        let types = trace.type_indices();
        for index in 0..trace.len() {
            let slot = slots[index];
            let doc = DenseTrace::slot_doc(slot);
            let transfer = sizes[index];
            let size = ByteSize::new(transfer);
            let doc_type = DocumentType::from_index(types[index] as usize);

            let prev = last_transfer[slot as usize];
            last_transfer[slot as usize] = transfer;
            let modified = prev != NO_TRANSFER
                && self
                    .config
                    .modification_rule
                    .is_modification(prev, transfer);

            let hit = if modified {
                // The origin changed the document: any cached copy is
                // stale. Count a miss and fetch the new version.
                cache.invalidate(doc);
                false
            } else {
                cache.access(doc)
            };
            let event = AccessEvent {
                index: index as u64,
                doc,
                doc_type,
                size,
                warmup: index < warmup_end,
            };
            observer.on_access(event, access_kind(hit, modified));
            if !hit {
                let outcome = cache.insert(doc, doc_type, size);
                notify_insert(observer, event, outcome.disposition, &outcome.evicted);
            }

            if index >= warmup_end {
                let stats = &mut by_type[doc_type];
                stats.record(size, hit);
                if modified {
                    stats.modification_misses += 1;
                }
                let measured_index = index - warmup_end;
                if measured_index % sample_every == sample_every - 1 {
                    occupancy.push(OccupancySample::capture(index as u64, &cache));
                }
            }
        }
        observer.on_run_end();

        SimulationReport {
            policy: cache.policy_label(),
            config: self.config,
            by_type,
            occupancy,
        }
    }

    /// Replays a pre-built dense trace in fixed-size batches with
    /// deferred heap maintenance — the fast path for heap-backed
    /// policies (GDS/GDSF/GD\*/LFU/LFU-DA/SIZE).
    ///
    /// Observable behavior is bit-identical to [`Simulator::run_dense`]
    /// (pinned by the `batched_vs_serial` proptests): batching only
    /// changes *when* heap sifts physically happen, never which victims
    /// are chosen. Uses [`DEFAULT_BATCH_SIZE`].
    pub fn run_dense_batched(self, trace: &DenseTrace) -> SimulationReport {
        self.run_dense_batched_sized(trace, DEFAULT_BATCH_SIZE, &mut NoopObserver)
    }

    /// Like [`Simulator::run_dense_batched`], but streams every event
    /// into `observer`.
    pub fn run_dense_batched_observed<O: Observer>(
        self,
        trace: &DenseTrace,
        observer: &mut O,
    ) -> SimulationReport {
        self.run_dense_batched_sized(trace, DEFAULT_BATCH_SIZE, observer)
    }

    /// [`Simulator::run_dense_batched`] with an explicit batch size
    /// (clamped to ≥ 1). Exposed so the differential tests can probe
    /// batch-boundary edge cases; sweeps should use the default.
    pub fn run_dense_batched_sized<O: Observer>(
        mut self,
        trace: &DenseTrace,
        batch_size: usize,
        observer: &mut O,
    ) -> SimulationReport {
        let batch_size = batch_size.max(1);
        let (warmup_end, sample_every) = self.schedule(trace.len());
        observer.on_run_start(RunMeta {
            total_requests: trace.len(),
            warmup_end,
            capacity: self.config.capacity,
        });
        // The policy must be switched before it moves into the cache;
        // deferral stays on for the whole replay — pops flush lazily, so
        // batch boundaries need no synchronization point.
        self.policy.set_batched(true);
        let mut cache = Cache::with_dense_slots(
            self.config.capacity,
            self.policy,
            self.config.admission_rule,
            trace.distinct_documents(),
        );
        if let Some(reasons) = self.admit_reasons.take() {
            cache.set_admit_reasons(reasons);
        }
        let mut last_transfer: Vec<u64> = vec![NO_TRANSFER; trace.distinct_documents()];

        let mut by_type: TypeMap<HitStats> = TypeMap::default();
        let mut occupancy = OccupancySeries::new();

        let slots = trace.docs();
        let sizes = trace.sizes();
        let types = trace.type_indices();
        // Scratch reused across batches: per-request modification verdicts
        // and the eviction buffer (replaces a Vec allocation per insert).
        let mut modified_flags = vec![false; batch_size.min(trace.len().max(1))];
        let mut evicted: Vec<webcache_core::Eviction> = Vec::new();

        let mut start = 0usize;
        while start < trace.len() {
            let end = (start + batch_size).min(trace.len());

            // Pre-pass: resolve every request's modification verdict for
            // the batch in one straight-line sweep over the SoA arrays.
            // The last-transfer chain is sequential within the batch, so
            // the verdicts equal the serial loop's exactly.
            for index in start..end {
                let slot = slots[index] as usize;
                let transfer = sizes[index];
                let prev = last_transfer[slot];
                last_transfer[slot] = transfer;
                modified_flags[index - start] = prev != NO_TRANSFER
                    && self
                        .config
                        .modification_rule
                        .is_modification(prev, transfer);
            }

            for index in start..end {
                let slot = slots[index];
                let doc = DenseTrace::slot_doc(slot);
                let size = ByteSize::new(sizes[index]);
                let doc_type = DocumentType::from_index(types[index] as usize);
                let modified = modified_flags[index - start];

                let hit = if modified {
                    cache.invalidate(doc);
                    false
                } else {
                    cache.access(doc)
                };
                let event = AccessEvent {
                    index: index as u64,
                    doc,
                    doc_type,
                    size,
                    warmup: index < warmup_end,
                };
                observer.on_access(event, access_kind(hit, modified));
                if !hit {
                    let disposition = cache.insert_into(doc, doc_type, size, &mut evicted);
                    notify_insert(observer, event, disposition, &evicted);
                }

                if index >= warmup_end {
                    let stats = &mut by_type[doc_type];
                    stats.record(size, hit);
                    if modified {
                        stats.modification_misses += 1;
                    }
                    let measured_index = index - warmup_end;
                    if measured_index % sample_every == sample_every - 1 {
                        occupancy.push(OccupancySample::capture(index as u64, &cache));
                    }
                }
            }
            start = end;
        }
        observer.on_run_end();

        SimulationReport {
            policy: cache.policy_label(),
            config: self.config,
            by_type,
            occupancy,
        }
    }

    /// Runs the full trace through the sparse-id hashed cache path.
    ///
    /// Semantically identical to [`Simulator::run`]; kept so the dense
    /// rewrite stays checkable against the straightforward
    /// implementation (see the `dense_matches_hashed` tests).
    pub fn run_hashed(self, trace: &Trace) -> SimulationReport {
        self.run_hashed_observed(trace, &mut NoopObserver)
    }

    /// Like [`Simulator::run_hashed`], but streams every event into
    /// `observer`. Events carry the caller's sparse document id.
    pub fn run_hashed_observed<O: Observer>(
        self,
        trace: &Trace,
        observer: &mut O,
    ) -> SimulationReport {
        let (warmup_end, sample_every) = self.schedule(trace.len());
        observer.on_run_start(RunMeta {
            total_requests: trace.len(),
            warmup_end,
            capacity: self.config.capacity,
        });
        let mut cache = Cache::with_admission(
            self.config.capacity,
            self.policy,
            self.config.admission_rule,
        );
        if let Some(reasons) = self.admit_reasons {
            cache.set_admit_reasons(reasons);
        }
        let mut last_transfer: HashMap<u64, u64> = HashMap::new();

        let mut by_type: TypeMap<HitStats> = TypeMap::default();
        let mut occupancy = OccupancySeries::new();

        for (index, request) in trace.iter().enumerate() {
            let doc = request.doc;
            let transfer = request.size.as_u64();
            let prev = last_transfer.insert(doc.as_u64(), transfer);

            let modified =
                prev.is_some_and(|p| self.config.modification_rule.is_modification(p, transfer));

            let hit = if modified {
                cache.invalidate(doc);
                false
            } else {
                cache.access(doc)
            };
            let event = AccessEvent {
                index: index as u64,
                doc,
                doc_type: request.doc_type,
                size: request.size,
                warmup: index < warmup_end,
            };
            observer.on_access(event, access_kind(hit, modified));
            if !hit {
                let outcome = cache.insert(doc, request.doc_type, request.size);
                notify_insert(observer, event, outcome.disposition, &outcome.evicted);
            }

            if index >= warmup_end {
                let stats = &mut by_type[request.doc_type];
                stats.record(request.size, hit);
                if modified {
                    stats.modification_misses += 1;
                }
                let measured_index = index - warmup_end;
                if measured_index % sample_every == sample_every - 1 {
                    occupancy.push(OccupancySample::capture(index as u64, &cache));
                }
            }
        }
        observer.on_run_end();

        SimulationReport {
            policy: cache.policy_label(),
            config: self.config,
            by_type,
            occupancy,
        }
    }
}

/// Classifies one request's outcome for the observer.
#[inline(always)]
pub(crate) fn access_kind(hit: bool, modified: bool) -> AccessKind {
    if modified {
        AccessKind::ModificationMiss
    } else if hit {
        AccessKind::Hit
    } else {
        AccessKind::Miss
    }
}

/// Forwards the insert outcome (disposition + victims) to the observer.
#[inline(always)]
pub(crate) fn notify_insert<O: Observer>(
    observer: &mut O,
    event: AccessEvent,
    disposition: webcache_core::InsertDisposition,
    evicted: &[webcache_core::Eviction],
) {
    match disposition {
        webcache_core::InsertDisposition::Inserted => observer.on_insert(event),
        webcache_core::InsertDisposition::RejectedByAdmission => {
            observer.on_admission_reject(event)
        }
        // A document larger than the whole cache is silently skipped by
        // the store itself; no admission verdict, no insert.
        webcache_core::InsertDisposition::TooLarge => {}
    }
    for &eviction in evicted {
        observer.on_evict(event, eviction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;
    use webcache_trace::{DocId, DocumentType, Request, Timestamp};

    fn req(doc: u64, size: u64) -> Request {
        Request::new(
            Timestamp::ZERO,
            DocId::new(doc),
            DocumentType::Html,
            ByteSize::new(size),
        )
    }

    fn run(trace: Vec<Request>, config: SimulationConfig) -> SimulationReport {
        Simulator::new(PolicyKind::Lru.instantiate(), config).run(&trace.into())
    }

    #[test]
    fn repeated_requests_hit() {
        let trace = vec![req(1, 100), req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.requests, 4);
        assert_eq!(overall.hits, 3, "first request is a cold miss");
        assert_eq!(overall.byte_hit_rate(), 0.75);
    }

    #[test]
    fn warmup_requests_are_not_counted() {
        let trace = vec![req(1, 100), req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.5);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.requests, 2);
        assert_eq!(overall.hits, 2, "cache was warmed by the first half");
    }

    #[test]
    fn small_size_change_is_a_modification_miss() {
        // 100 -> 102 bytes: 2% change, under the 5% threshold.
        let trace = vec![req(1, 100), req(1, 102), req(1, 102)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.hits, 1, "only the third request hits");
        assert_eq!(overall.modification_misses, 1);
    }

    #[test]
    fn large_size_change_is_an_interrupted_transfer_hit() {
        // 100 -> 30 bytes: 70% change, an interrupt; cached copy valid.
        let trace = vec![req(1, 100), req(1, 30), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.hits, 2);
        assert_eq!(overall.modification_misses, 0);
    }

    #[test]
    fn any_change_rule_counts_every_change_as_modification() {
        let trace = vec![req(1, 100), req(1, 30), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000))
            .with_warmup_fraction(0.0)
            .with_modification_rule(ModificationRule::AnyChange);
        let report = run(trace, config);
        let overall = report.overall();
        assert_eq!(overall.hits, 0);
        assert_eq!(overall.modification_misses, 2);
    }

    #[test]
    fn per_type_accounting_is_separate() {
        let mut trace = vec![req(1, 100), req(1, 100)];
        trace.push(Request::new(
            Timestamp::ZERO,
            DocId::new(2),
            DocumentType::Image,
            ByteSize::new(50),
        ));
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.by_type()[DocumentType::Html].requests, 2);
        assert_eq!(report.by_type()[DocumentType::Image].requests, 1);
        assert_eq!(report.by_type()[DocumentType::Image].hits, 0);
        assert_eq!(report.overall().requests, 3);
    }

    #[test]
    fn eviction_under_pressure_reduces_hits() {
        // Capacity for one document only; alternating docs never hit.
        let trace = vec![req(1, 80), req(2, 80), req(1, 80), req(2, 80)];
        let config = SimulationConfig::new(ByteSize::new(100)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.overall().hits, 0);
    }

    #[test]
    fn occupancy_sampling_produces_series() {
        let trace: Vec<Request> = (0..100).map(|i| req(i % 10, 100)).collect();
        let config = SimulationConfig::new(ByteSize::new(10_000))
            .with_warmup_fraction(0.0)
            .with_occupancy_samples(10);
        let report = run(trace, config);
        assert_eq!(report.occupancy.len(), 10);
        let last = report.occupancy.samples().last().unwrap();
        assert!((last.document_fraction[DocumentType::Html] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn modification_rule_boundaries() {
        let rule = ModificationRule::SizeDelta;
        assert!(
            !rule.is_modification(100, 100),
            "no change is not a modification"
        );
        assert!(
            rule.is_modification(100, 104),
            "4% change is a modification"
        );
        assert!(
            !rule.is_modification(100, 105),
            "exactly 5% is an interrupt"
        );
        assert!(
            !rule.is_modification(100, 30),
            "large change is an interrupt"
        );
        assert!(ModificationRule::AnyChange.is_modification(100, 101));
        assert!(!ModificationRule::AnyChange.is_modification(100, 100));
    }

    #[test]
    fn zero_byte_previous_transfer_is_never_a_modification() {
        // A 0 -> N change has no meaningful relative delta; the intended
        // reading is a ≥100% change, i.e. an interrupted transfer, so the
        // cached copy stays valid. Pin it explicitly for every rule arm.
        let rule = ModificationRule::SizeDelta;
        assert!(!rule.is_modification(0, 1));
        assert!(!rule.is_modification(0, 1_000_000));
        assert!(!rule.is_modification(0, 0), "no change is no modification");
        // AnyChange by definition flags every change, including from 0.
        assert!(ModificationRule::AnyChange.is_modification(0, 1));
        assert!(!ModificationRule::AnyChange.is_modification(0, 0));
    }

    #[test]
    fn zero_byte_transfers_replay_without_counting_modifications() {
        // End-to-end: a document first seen as a 0-byte transfer, then
        // fetched in full, must not be scored as a modification miss.
        let trace = vec![req(1, 0), req(1, 500), req(1, 500)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.overall().modification_misses, 0);
        assert_eq!(report.overall().hits, 2, "both follow-ups hit");
    }

    #[test]
    fn builder_defaults_match_the_plain_constructor() {
        let built = SimulationConfig::builder()
            .capacity(ByteSize::new(4096))
            .build();
        assert_eq!(built, SimulationConfig::new(ByteSize::new(4096)));
        assert_eq!(built.warmup_fraction, 0.10);
        assert_eq!(built.modification_rule, ModificationRule::SizeDelta);
        assert_eq!(built.occupancy_samples, 0);
    }

    #[test]
    fn builder_overrides_every_field() {
        use webcache_core::AdmissionRule;
        let built = SimulationConfig::builder()
            .capacity(ByteSize::new(10))
            .warmup_fraction(0.25)
            .modification_rule(ModificationRule::AnyChange)
            .admission_rule(AdmissionRule::SecondHit(8))
            .occupancy_samples(7)
            .build();
        let by_hand = SimulationConfig::new(ByteSize::new(10))
            .with_warmup_fraction(0.25)
            .with_modification_rule(ModificationRule::AnyChange)
            .with_admission_rule(AdmissionRule::SecondHit(8))
            .with_occupancy_samples(7);
        assert_eq!(built, by_hand);
    }

    #[test]
    #[should_panic(expected = "requires .capacity")]
    fn builder_without_capacity_panics() {
        let _ = SimulationConfig::builder().build();
    }

    #[test]
    #[should_panic(expected = "warm-up fraction")]
    fn builder_rejects_out_of_range_warmup() {
        let _ = SimulationConfig::builder()
            .capacity(ByteSize::new(10))
            .warmup_fraction(1.0);
    }

    #[test]
    fn oversized_documents_never_hit_but_do_not_crash() {
        let trace = vec![req(1, 5_000), req(1, 5_000)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        let report = run(trace, config);
        assert_eq!(report.overall().hits, 0);
    }

    #[test]
    fn admission_rule_reduces_first_insertions() {
        use webcache_core::AdmissionRule;
        // doc 1 appears three times; with the second-hit filter the first
        // request cannot populate the cache, so only the third hits.
        let trace = vec![req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000))
            .with_warmup_fraction(0.0)
            .with_admission_rule(AdmissionRule::SecondHit(16));
        let report = run(trace, config);
        assert_eq!(report.overall().hits, 1);

        // The same trace without admission control hits twice.
        let trace = vec![req(1, 100), req(1, 100), req(1, 100)];
        let config = SimulationConfig::new(ByteSize::new(1000)).with_warmup_fraction(0.0);
        assert_eq!(run(trace, config).overall().hits, 2);
    }

    #[test]
    fn policy_label_is_propagated() {
        let trace = vec![req(1, 10)];
        let report = Simulator::new(
            PolicyKind::GdStar(webcache_core::CostModel::Packet).instantiate(),
            SimulationConfig::new(ByteSize::new(100)),
        )
        .run(&trace.into());
        assert_eq!(report.policy, "GD*(P)");
    }

    #[test]
    fn from_spec_composes_admission_and_label() {
        use webcache_core::PolicySpec;
        let trace: Trace = vec![req(1, 10)].into();
        let spec: PolicySpec = "tinylfu+slru".parse().unwrap();
        let report =
            Simulator::from_spec(spec, SimulationConfig::new(ByteSize::new(100))).run(&trace);
        assert_eq!(report.policy, "TinyLFU+SLRU");
        assert_eq!(
            report.config.admission_rule,
            webcache_core::AdmissionSpec::TinyLfu,
            "spec admission must land in the effective config"
        );

        // A bare kind inherits the config's admission rule.
        let config = SimulationConfig::new(ByteSize::new(100))
            .with_admission_rule(AdmissionRule::SecondHit(8));
        let report = Simulator::from_spec(PolicyKind::Lru, config).run(&trace);
        assert_eq!(report.policy, "2HIT:8+LRU");
        assert_eq!(report.config.admission_rule, AdmissionRule::SecondHit(8));
    }
}
