//! Service-level objectives with multi-window burn-rate alerting.
//!
//! An [`SloTracker`] watches the replay against two optional
//! objectives: a **hit-rate floor** (the cache's reason to exist) and a
//! **modeled p99 latency ceiling** (at most 1% of measured requests may
//! exceed the target, using the same two-link [`LatencyModel`] as
//! [`LatencyObserver`](crate::latency_obs::LatencyObserver)). Following
//! the SRE burn-rate playbook, a breach needs **two windows** to agree:
//! the *short* window (the last pass) must be burning error budget
//! faster than the threshold **and** the *long* window (the trailing
//! [`SloConfig::window_passes`] passes) must agree — so a single noisy
//! pass does not page, and a sustained regression fires within one
//! pass.
//!
//! Alerts are **edge-triggered**: the tracker fires once when an SLO
//! *enters* breach and re-arms only after a healthy evaluation, so a
//! steady forced breach produces exactly one alert (and thus exactly
//! one post-mortem bundle through the serve trigger).
//!
//! The record path is relaxed atomics on a shared core (clones share
//! state), so the tracker rides the observer seam in both serial and
//! concurrent serve modes; [`SloTracker::evaluate`] runs single-
//! threaded from the pass boundary.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use webcache_obs::{Counter, Gauge, Registry};

use crate::latency::LatencyModel;
use crate::observe::{AccessEvent, AccessKind, Observer};

/// The latency SLO's implicit quantile: at most this fraction of
/// requests may exceed the target (p99 ⇒ 1%).
pub const LATENCY_BUDGET_FRACTION: f64 = 0.01;

/// Objectives and alerting shape for an [`SloTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Minimum acceptable hit rate over the measured region, in
    /// `(0, 1)`; `None` disables the hit-rate SLO.
    pub hit_rate: Option<f64>,
    /// Maximum acceptable modeled p99 latency in microseconds; `None`
    /// disables the latency SLO.
    pub p99_latency_us: Option<u64>,
    /// Long-window length in passes (the short window is always the
    /// last pass).
    pub window_passes: usize,
    /// Burn-rate multiple that must be exceeded in **both** windows to
    /// alert (1.0 = consuming budget exactly as fast as allowed).
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            hit_rate: None,
            p99_latency_us: None,
            window_passes: 12,
            burn_threshold: 2.0,
        }
    }
}

impl SloConfig {
    /// Whether any objective is set.
    pub fn enabled(&self) -> bool {
        self.hit_rate.is_some() || self.p99_latency_us.is_some()
    }
}

/// One fired alert (also delivered to the installed trigger).
#[derive(Debug, Clone, PartialEq)]
pub struct SloBreach {
    /// Which objective fired: `"hit_rate"` or `"latency_p99"`.
    pub slo: &'static str,
    /// Human-readable burn summary.
    pub detail: String,
}

/// Burn rates of one objective after an evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRates {
    /// Last-pass burn multiple.
    pub short: f64,
    /// Trailing-window burn multiple.
    pub long: f64,
    /// Whether the objective is currently in breach.
    pub breaching: bool,
}

/// The alert sink: called once per SLO transition into breach.
pub struct SloTrigger(Box<dyn FnMut(&SloBreach) + Send>);

impl SloTrigger {
    /// Wraps an alert callback.
    pub fn new(f: impl FnMut(&SloBreach) + Send + 'static) -> SloTrigger {
        SloTrigger(Box::new(f))
    }
}

impl std::fmt::Debug for SloTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SloTrigger(..)")
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PassCounts {
    requests: u64,
    hits: u64,
    over_latency: u64,
}

#[derive(Debug, Clone)]
struct SloGauges {
    short: Gauge,
    long: Gauge,
    breaches: Counter,
}

struct SloInner {
    windows: VecDeque<PassCounts>,
    hit_breaching: bool,
    latency_breaching: bool,
    trigger: Option<SloTrigger>,
    hit_gauges: Option<SloGauges>,
    latency_gauges: Option<SloGauges>,
}

struct SloShared {
    requests: AtomicU64,
    hits: AtomicU64,
    over_latency: AtomicU64,
    inner: Mutex<SloInner>,
}

/// Tracks SLO burn rates over the replay. See the [module docs](self).
#[derive(Clone)]
pub struct SloTracker {
    config: SloConfig,
    model: LatencyModel,
    shared: Arc<SloShared>,
}

impl std::fmt::Debug for SloTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloTracker")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl SloTracker {
    /// A tracker with no registry export.
    pub fn new(config: SloConfig, model: LatencyModel) -> SloTracker {
        SloTracker {
            config,
            model,
            shared: Arc::new(SloShared {
                requests: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                over_latency: AtomicU64::new(0),
                inner: Mutex::new(SloInner {
                    windows: VecDeque::new(),
                    hit_breaching: false,
                    latency_breaching: false,
                    trigger: None,
                    hit_gauges: None,
                    latency_gauges: None,
                }),
            }),
        }
    }

    /// A tracker exporting `webcache_slo_burn_rate{slo, window}` gauges
    /// and `webcache_slo_breach_total{slo}` counters through `registry`
    /// (only for objectives that are actually set).
    pub fn register(config: SloConfig, model: LatencyModel, registry: &Registry) -> SloTracker {
        let tracker = SloTracker::new(config, model);
        let gauges = |slo: &str| SloGauges {
            short: registry.gauge(
                "webcache_slo_burn_rate",
                "Error-budget burn multiple per SLO and window.",
                &[("slo", slo), ("window", "short")],
            ),
            long: registry.gauge(
                "webcache_slo_burn_rate",
                "Error-budget burn multiple per SLO and window.",
                &[("slo", slo), ("window", "long")],
            ),
            breaches: registry.counter(
                "webcache_slo_breach_total",
                "SLO breach alerts fired (edge-triggered).",
                &[("slo", slo)],
            ),
        };
        {
            let mut inner = tracker.shared.inner.lock().expect("slo lock");
            if config.hit_rate.is_some() {
                inner.hit_gauges = Some(gauges("hit_rate"));
            }
            if config.p99_latency_us.is_some() {
                inner.latency_gauges = Some(gauges("latency_p99"));
            }
        }
        tracker
    }

    /// The configured objectives.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Installs the alert sink (fired from [`SloTracker::evaluate`]).
    pub fn set_trigger(&self, trigger: SloTrigger) {
        self.shared.inner.lock().expect("slo lock").trigger = Some(trigger);
    }

    /// Closes the current pass: folds the in-flight counters into the
    /// window ring, recomputes both windows' burn rates, publishes the
    /// gauges, and fires the trigger for every SLO that *entered*
    /// breach. Call once per pass, single-threaded.
    pub fn evaluate(&self) -> Vec<SloBreach> {
        let pass = PassCounts {
            requests: self.shared.requests.swap(0, Ordering::Relaxed),
            hits: self.shared.hits.swap(0, Ordering::Relaxed),
            over_latency: self.shared.over_latency.swap(0, Ordering::Relaxed),
        };
        let mut inner = self.shared.inner.lock().expect("slo lock");
        if inner.windows.len() == self.config.window_passes.max(1) {
            inner.windows.pop_front();
        }
        inner.windows.push_back(pass);
        let mut long = PassCounts::default();
        for w in &inner.windows {
            long.requests += w.requests;
            long.hits += w.hits;
            long.over_latency += w.over_latency;
        }

        let threshold = self.config.burn_threshold;
        let mut fired = Vec::new();
        if let Some(target) = self.config.hit_rate {
            let burn = |c: &PassCounts| {
                let budget = (1.0 - target).max(f64::EPSILON);
                if c.requests == 0 {
                    0.0
                } else {
                    (1.0 - c.hits as f64 / c.requests as f64) / budget
                }
            };
            let rates = BurnRates {
                short: burn(&pass),
                long: burn(&long),
                breaching: burn(&pass) > threshold && burn(&long) > threshold,
            };
            let was = inner.hit_breaching;
            inner.hit_breaching = rates.breaching;
            if let Some(g) = &inner.hit_gauges {
                g.short.set(rates.short);
                g.long.set(rates.long);
            }
            if rates.breaching && !was {
                fired.push(self.fire(&mut inner, "hit_rate", rates));
            }
        }
        if self.config.p99_latency_us.is_some() {
            let burn = |c: &PassCounts| {
                if c.requests == 0 {
                    0.0
                } else {
                    (c.over_latency as f64 / c.requests as f64) / LATENCY_BUDGET_FRACTION
                }
            };
            let rates = BurnRates {
                short: burn(&pass),
                long: burn(&long),
                breaching: burn(&pass) > threshold && burn(&long) > threshold,
            };
            let was = inner.latency_breaching;
            inner.latency_breaching = rates.breaching;
            if let Some(g) = &inner.latency_gauges {
                g.short.set(rates.short);
                g.long.set(rates.long);
            }
            if rates.breaching && !was {
                fired.push(self.fire(&mut inner, "latency_p99", rates));
            }
        }
        fired
    }

    /// The current burn state of one SLO (`"hit_rate"` or
    /// `"latency_p99"`), for status pages and tests.
    pub fn burn_state(&self, slo: &str) -> bool {
        let inner = self.shared.inner.lock().expect("slo lock");
        match slo {
            "hit_rate" => inner.hit_breaching,
            _ => inner.latency_breaching,
        }
    }

    /// Fires the alert for an SLO that just entered breach: bumps the
    /// breach counter and invokes the trigger.
    fn fire(&self, inner: &mut SloInner, slo: &'static str, rates: BurnRates) -> SloBreach {
        let breach = SloBreach {
            slo,
            detail: format!(
                "slo {slo} burning budget at {:.2}x (short) / {:.2}x (long), threshold {:.2}x",
                rates.short, rates.long, self.config.burn_threshold
            ),
        };
        let gauges = match slo {
            "hit_rate" => &inner.hit_gauges,
            _ => &inner.latency_gauges,
        };
        if let Some(g) = gauges {
            g.breaches.inc();
        }
        if let Some(trigger) = &mut inner.trigger {
            (trigger.0)(&breach);
        }
        breach
    }
}

impl Observer for SloTracker {
    #[inline]
    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        if event.warmup {
            return;
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        if kind.is_hit() {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(target_us) = self.config.p99_latency_us {
            let link = if kind.is_hit() {
                &self.model.local
            } else {
                &self.model.origin
            };
            let us = (link.transfer_ms(event.size) * 1_000.0) as u64;
            if us > target_us {
                self.shared.over_latency.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{ByteSize, DocId, DocumentType};

    fn event(size: u64) -> AccessEvent {
        AccessEvent {
            index: 0,
            doc: DocId::new(1),
            doc_type: DocumentType::Html,
            size: ByteSize::new(size),
            warmup: false,
        }
    }

    fn feed(tracker: &mut SloTracker, hits: usize, misses: usize) {
        for _ in 0..hits {
            tracker.on_access(event(1_000), AccessKind::Hit);
        }
        for _ in 0..misses {
            tracker.on_access(event(1_000), AccessKind::Miss);
        }
    }

    fn hit_rate_config(target: f64) -> SloConfig {
        SloConfig {
            hit_rate: Some(target),
            window_passes: 4,
            burn_threshold: 2.0,
            ..SloConfig::default()
        }
    }

    #[test]
    fn healthy_passes_never_fire() {
        let mut t = SloTracker::new(hit_rate_config(0.5), LatencyModel::campus_2001());
        for _ in 0..5 {
            feed(&mut t, 90, 10); // 90% HR against a 50% target
            assert!(t.evaluate().is_empty());
        }
        assert!(!t.burn_state("hit_rate"));
    }

    #[test]
    fn sustained_breach_fires_exactly_once() {
        let mut t = SloTracker::new(hit_rate_config(0.9), LatencyModel::campus_2001());
        let mut fired = 0;
        for _ in 0..6 {
            feed(&mut t, 10, 90); // 10% HR: burn = 0.9/0.1 = 9x
            fired += t.evaluate().len();
        }
        assert_eq!(fired, 1, "edge-triggered: one alert per breach episode");
        assert!(t.burn_state("hit_rate"));
    }

    #[test]
    fn recovery_rearms_the_alert() {
        let mut t = SloTracker::new(hit_rate_config(0.9), LatencyModel::campus_2001());
        feed(&mut t, 0, 100);
        assert_eq!(t.evaluate().len(), 1);
        // Healthy long enough for the long window to drain.
        for _ in 0..5 {
            feed(&mut t, 100, 0);
            assert!(t.evaluate().is_empty());
        }
        assert!(!t.burn_state("hit_rate"));
        feed(&mut t, 0, 100);
        let refire = t.evaluate();
        assert_eq!(refire.len(), 1, "re-armed after recovery");
        assert_eq!(refire[0].slo, "hit_rate");
    }

    #[test]
    fn one_bad_pass_in_a_healthy_long_window_does_not_fire() {
        let mut t = SloTracker::new(hit_rate_config(0.9), LatencyModel::campus_2001());
        // Seed the long window with healthy passes.
        for _ in 0..3 {
            feed(&mut t, 1000, 0);
            t.evaluate();
        }
        // One collapsed pass: short burns hot, but the long window
        // (3 x 1000 hits + 100 misses) stays under threshold.
        feed(&mut t, 0, 100);
        assert!(t.evaluate().is_empty(), "long window must veto");
    }

    #[test]
    fn latency_slo_counts_over_target_requests() {
        let config = SloConfig {
            p99_latency_us: Some(50_000), // hits (~6ms) pass, misses (~183ms) fail
            window_passes: 4,
            burn_threshold: 2.0,
            ..SloConfig::default()
        };
        let mut t = SloTracker::new(config, LatencyModel::campus_2001());
        let mut fired = Vec::new();
        for _ in 0..3 {
            // 10% of traffic over target: burn = 0.10/0.01 = 10x.
            for _ in 0..90 {
                t.on_access(event(10_000), AccessKind::Hit);
            }
            for _ in 0..10 {
                t.on_access(event(10_000), AccessKind::Miss);
            }
            fired.extend(t.evaluate());
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].slo, "latency_p99");
        assert!(fired[0].detail.contains("10.00x"), "{}", fired[0].detail);
    }

    #[test]
    fn warmup_is_excluded_and_trigger_is_invoked() {
        let mut t = SloTracker::new(hit_rate_config(0.9), LatencyModel::campus_2001());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        t.set_trigger(SloTrigger::new(move |b: &SloBreach| {
            sink.lock().unwrap().push(b.slo);
        }));
        let mut warm = event(1_000);
        warm.warmup = true;
        t.on_access(warm, AccessKind::Miss);
        assert!(t.evaluate().is_empty(), "warmup misses carry no budget");
        feed(&mut t, 0, 50);
        t.evaluate();
        assert_eq!(*seen.lock().unwrap(), vec!["hit_rate"]);
    }

    #[test]
    fn registry_export_carries_burn_gauges_and_breach_counter() {
        let registry = Registry::new();
        let mut t =
            SloTracker::register(hit_rate_config(0.9), LatencyModel::campus_2001(), &registry);
        feed(&mut t, 0, 100);
        t.evaluate();
        let text = registry.prometheus_text();
        assert!(
            text.contains("webcache_slo_burn_rate{slo=\"hit_rate\",window=\"short\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("webcache_slo_burn_rate{slo=\"hit_rate\",window=\"long\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("webcache_slo_breach_total{slo=\"hit_rate\"} 1"),
            "{text}"
        );
        // No latency SLO configured: no latency rows registered.
        assert!(!text.contains("slo=\"latency_p99\""), "{text}");
    }

    #[test]
    fn clones_share_counters_across_threads() {
        let t = SloTracker::new(hit_rate_config(0.5), LatencyModel::campus_2001());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mut clone = t.clone();
                std::thread::spawn(move || feed(&mut clone, 100, 100))
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        // 50% HR against a 50% target: burn 1.0x, under the 2x bar.
        assert!(t.evaluate().is_empty());
        let inner = t.shared.inner.lock().unwrap();
        assert_eq!(inner.windows.back().unwrap().requests, 800);
        assert_eq!(inner.windows.back().unwrap().hits, 400);
    }
}
