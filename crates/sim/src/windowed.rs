//! Windowed per-type metrics: a time series of hit-rate / byte-hit-rate
//! measurements built from simulator events.
//!
//! [`WindowedMetrics`] is an [`Observer`] that slices the **measured**
//! region of a replay (warm-up excluded) into consecutive windows of a
//! fixed request count or byte volume ([`WindowSpec`]) and accumulates a
//! full [`HitStats`] per [`DocumentType`] in each window, alongside churn
//! counters (evictions, bytes evicted, admission rejects). The windows
//! sum back exactly to the run's aggregate report — the differential
//! property tests pin this.
//!
//! Warm-up is detected from [`RunMeta`]: requests before `warmup_end`
//! contribute nothing to any window, but evictions and admission rejects
//! during warm-up are still counted separately in
//! [`WindowedMetrics::warmup_churn`], since cache churn while filling is
//! exactly what Figure 1 of the paper is about.
//!
//! Window boundary semantics: a window is `[start_index, end_index)` over
//! trace request indices. A window closes when its request count (or byte
//! volume) reaches the spec target, but only *lazily* — at the next
//! access — so that the insert/eviction/rejection events of the closing
//! request land in the same window as its access. The final, possibly
//! partial, window is flushed by `on_run_end`.

use serde::{Deserialize, Serialize};

use webcache_core::Eviction;
use webcache_trace::{ByteSize, DocumentType, TypeMap};

use crate::metrics::HitStats;
use crate::observe::{AccessEvent, AccessKind, Observer, RunMeta};

/// How the measured region is sliced into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Close a window after this many measured requests.
    Requests(u64),
    /// Close a window once this many bytes have been requested in it.
    Bytes(ByteSize),
}

impl WindowSpec {
    /// Whether a window with `requests` requests and `bytes` requested
    /// bytes has reached the target.
    fn is_full(self, requests: u64, bytes: ByteSize) -> bool {
        match self {
            WindowSpec::Requests(n) => requests >= n,
            WindowSpec::Bytes(b) => bytes >= b,
        }
    }
}

/// Cache-churn counters for one window (or the warm-up region).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnCounters {
    /// Documents evicted to make room.
    pub evictions: u64,
    /// Bytes freed by those evictions.
    pub bytes_evicted: ByteSize,
    /// Missed documents the admission rule turned away.
    pub admission_rejects: u64,
}

impl std::ops::AddAssign for ChurnCounters {
    fn add_assign(&mut self, rhs: ChurnCounters) {
        self.evictions += rhs.evictions;
        self.bytes_evicted += rhs.bytes_evicted;
        self.admission_rejects += rhs.admission_rejects;
    }
}

/// One closed measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Trace index of the first request in the window.
    pub start_index: u64,
    /// One past the trace index of the last request in the window.
    pub end_index: u64,
    /// Hit counters per document type.
    pub by_type: TypeMap<HitStats>,
    /// Eviction / admission churn attributed to the window.
    pub churn: ChurnCounters,
}

impl Window {
    /// Counters aggregated over all document types.
    pub fn overall(&self) -> HitStats {
        let mut total = HitStats::default();
        for (_, s) in self.by_type.iter() {
            total += *s;
        }
        total
    }
}

/// The open window being accumulated.
#[derive(Debug, Clone)]
struct OpenWindow {
    start_index: u64,
    last_index: u64,
    by_type: TypeMap<HitStats>,
    churn: ChurnCounters,
    requests: u64,
    bytes: ByteSize,
}

impl OpenWindow {
    fn starting_at(index: u64) -> Self {
        OpenWindow {
            start_index: index,
            last_index: index,
            by_type: TypeMap::default(),
            churn: ChurnCounters::default(),
            requests: 0,
            bytes: ByteSize::ZERO,
        }
    }

    fn close(self) -> Window {
        Window {
            start_index: self.start_index,
            end_index: self.last_index + 1,
            by_type: self.by_type,
            churn: self.churn,
        }
    }
}

/// An [`Observer`] that produces the per-type windowed time series.
///
/// ```
/// use webcache_core::PolicyKind;
/// use webcache_sim::{SimulationConfig, Simulator, WindowSpec, WindowedMetrics};
/// use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};
///
/// let trace: Trace = (0..400u64)
///     .map(|i| Request::new(
///         Timestamp::from_millis(i),
///         DocId::new(i % 40),
///         DocumentType::Image,
///         ByteSize::new(500),
///     ))
///     .collect();
/// let config = SimulationConfig::builder()
///     .capacity(ByteSize::new(8_000))
///     .build();
/// let mut windows = WindowedMetrics::per_requests(100);
/// let report = Simulator::new(PolicyKind::Lru.build(), config)
///     .run_observed(&trace, &mut windows);
/// assert_eq!(windows.windows().len(), 4, "360 measured requests, 100 per window");
/// assert_eq!(windows.aggregate(), report.overall(), "windows sum to the report");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedMetrics {
    spec: WindowSpec,
    meta: Option<RunMeta>,
    windows: Vec<Window>,
    #[serde(skip)]
    current: Option<OpenWindow>,
    warmup_churn: ChurnCounters,
}

impl WindowedMetrics {
    /// Creates a collector for the given window specification.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized window.
    pub fn new(spec: WindowSpec) -> Self {
        let zero = match spec {
            WindowSpec::Requests(n) => n == 0,
            WindowSpec::Bytes(b) => b.is_zero(),
        };
        assert!(!zero, "window size must be positive");
        WindowedMetrics {
            spec,
            meta: None,
            windows: Vec::new(),
            current: None,
            warmup_churn: ChurnCounters::default(),
        }
    }

    /// Windows of `n` measured requests each.
    pub fn per_requests(n: u64) -> Self {
        WindowedMetrics::new(WindowSpec::Requests(n))
    }

    /// Windows of (at least) `bytes` requested bytes each.
    pub fn per_bytes(bytes: ByteSize) -> Self {
        WindowedMetrics::new(WindowSpec::Bytes(bytes))
    }

    /// The window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Run metadata captured at `on_run_start` (None before a run).
    pub fn meta(&self) -> Option<RunMeta> {
        self.meta
    }

    /// The closed windows, in trace order.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Churn that happened during the warm-up region (no hit counters are
    /// kept for warm-up; its requests are not measured).
    pub fn warmup_churn(&self) -> ChurnCounters {
        self.warmup_churn
    }

    /// Total measured churn, summed over all windows.
    pub fn total_churn(&self) -> ChurnCounters {
        let mut total = ChurnCounters::default();
        for w in &self.windows {
            total += w.churn;
        }
        total
    }

    /// Per-type counters summed over all windows. Equals the
    /// `SimulationReport::by_type` counters of the same run.
    pub fn aggregate_by_type(&self) -> TypeMap<HitStats> {
        let mut total: TypeMap<HitStats> = TypeMap::default();
        for w in &self.windows {
            for (ty, s) in w.by_type.iter() {
                total[ty] += *s;
            }
        }
        total
    }

    /// Overall counters summed over all windows and types.
    pub fn aggregate(&self) -> HitStats {
        let mut total = HitStats::default();
        for (_, s) in self.aggregate_by_type().iter() {
            total += *s;
        }
        total
    }

    /// The open window the event at `index` belongs to, closing a full
    /// predecessor first.
    fn window_for(&mut self, index: u64) -> &mut OpenWindow {
        if let Some(cur) = self.current.as_ref() {
            if self.spec.is_full(cur.requests, cur.bytes) && index > cur.last_index {
                let closed = self.current.take().expect("checked above").close();
                self.windows.push(closed);
            }
        }
        self.current
            .get_or_insert_with(|| OpenWindow::starting_at(index))
    }

    /// Routes a churn increment to the warm-up bucket or the open window.
    fn churn_for(&mut self, event: AccessEvent) -> &mut ChurnCounters {
        if event.warmup {
            &mut self.warmup_churn
        } else {
            &mut self.window_for(event.index).churn
        }
    }
}

impl Observer for WindowedMetrics {
    fn on_run_start(&mut self, meta: RunMeta) {
        self.meta = Some(meta);
        self.windows.clear();
        self.current = None;
        self.warmup_churn = ChurnCounters::default();
    }

    fn on_access(&mut self, event: AccessEvent, kind: AccessKind) {
        if event.warmup {
            return;
        }
        let window = self.window_for(event.index);
        window.last_index = event.index;
        window.requests += 1;
        window.bytes += event.size;
        let stats = &mut window.by_type[event.doc_type];
        stats.record(event.size, kind.is_hit());
        if kind == AccessKind::ModificationMiss {
            stats.modification_misses += 1;
        }
    }

    fn on_admission_reject(&mut self, event: AccessEvent) {
        self.churn_for(event).admission_rejects += 1;
    }

    fn on_evict(&mut self, at: AccessEvent, evicted: Eviction) {
        let churn = self.churn_for(at);
        churn.evictions += 1;
        churn.bytes_evicted += evicted.size;
    }

    fn on_run_end(&mut self) {
        if let Some(cur) = self.current.take() {
            self.windows.push(cur.close());
        }
    }
}

/// Convenience: the per-type series of one metric across windows.
impl WindowedMetrics {
    /// `(window start index, hit rate of `ty` in that window)` pairs.
    pub fn hit_rate_series(&self, ty: DocumentType) -> Vec<(u64, f64)> {
        self.windows
            .iter()
            .map(|w| (w.start_index, w.by_type[ty].hit_rate()))
            .collect()
    }

    /// `(window start index, byte hit rate of `ty` in that window)` pairs.
    pub fn byte_hit_rate_series(&self, ty: DocumentType) -> Vec<(u64, f64)> {
        self.windows
            .iter()
            .map(|w| (w.start_index, w.by_type[ty].byte_hit_rate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_core::PolicyKind;

    use crate::{SimulationConfig, Simulator};
    use webcache_trace::{DocId, Request, Timestamp, Trace};

    fn req(doc: u64, ty: DocumentType, size: u64) -> Request {
        Request::new(Timestamp::ZERO, DocId::new(doc), ty, ByteSize::new(size))
    }

    fn mixed_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| {
                let ty = DocumentType::ALL[(i % 5) as usize];
                req(i % 23, ty, 100 + (i % 11) * 37)
            })
            .collect()
    }

    fn run_with(
        trace: &Trace,
        capacity: u64,
        warmup: f64,
        metrics: &mut WindowedMetrics,
    ) -> crate::SimulationReport {
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(capacity))
            .warmup_fraction(warmup)
            .build();
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(trace, metrics)
    }

    #[test]
    fn request_windows_partition_the_measured_region() {
        let trace = mixed_trace(100);
        let mut metrics = WindowedMetrics::per_requests(30);
        run_with(&trace, 2_000, 0.1, &mut metrics);

        // 90 measured requests -> windows of 30/30/30.
        assert_eq!(metrics.windows().len(), 3);
        let meta = metrics.meta().unwrap();
        assert_eq!(meta.warmup_end, 10);
        assert_eq!(metrics.windows()[0].start_index, 10);
        for pair in metrics.windows().windows(2) {
            assert_eq!(
                pair[0].end_index, pair[1].start_index,
                "windows are contiguous"
            );
        }
        assert_eq!(metrics.windows().last().unwrap().end_index, 100);
        for w in metrics.windows() {
            assert_eq!(w.overall().requests, 30);
        }
    }

    #[test]
    fn partial_final_window_is_flushed() {
        let trace = mixed_trace(50);
        let mut metrics = WindowedMetrics::per_requests(40);
        run_with(&trace, 2_000, 0.0, &mut metrics);
        assert_eq!(metrics.windows().len(), 2);
        assert_eq!(metrics.windows()[0].overall().requests, 40);
        assert_eq!(metrics.windows()[1].overall().requests, 10);
    }

    #[test]
    fn windows_sum_to_the_aggregate_report() {
        let trace = mixed_trace(500);
        let mut metrics = WindowedMetrics::per_requests(64);
        let report = run_with(&trace, 3_000, 0.1, &mut metrics);
        assert_eq!(&metrics.aggregate_by_type(), report.by_type());
        assert_eq!(metrics.aggregate(), report.overall());
    }

    #[test]
    fn byte_windows_close_on_volume() {
        let trace: Trace = (0..20u64)
            .map(|i| req(i, DocumentType::Html, 100))
            .collect();
        let mut metrics = WindowedMetrics::per_bytes(ByteSize::new(500));
        run_with(&trace, 1_000, 0.0, &mut metrics);
        assert_eq!(metrics.windows().len(), 4, "2000 bytes / 500 per window");
        for w in metrics.windows() {
            assert_eq!(w.overall().bytes_requested, ByteSize::new(500));
        }
    }

    #[test]
    fn churn_lands_in_the_window_of_the_triggering_request() {
        // Capacity for one 80-byte document: every second request evicts.
        let trace: Trace = (0..10u64)
            .map(|i| req(i % 2, DocumentType::Html, 80))
            .collect();
        let mut metrics = WindowedMetrics::per_requests(5);
        run_with(&trace, 100, 0.0, &mut metrics);
        assert_eq!(metrics.windows().len(), 2);
        let total = metrics.total_churn();
        assert_eq!(total.evictions, 9, "every insert after the first evicts");
        assert_eq!(total.bytes_evicted, ByteSize::new(9 * 80));
        // Eviction triggered by the window-closing request stays in that
        // window, not the next one.
        assert_eq!(
            metrics.windows()[0].churn.evictions + metrics.windows()[1].churn.evictions,
            9
        );
        assert_eq!(metrics.windows()[0].churn.evictions, 4);
    }

    #[test]
    fn warmup_churn_is_separate() {
        let trace: Trace = (0..10u64)
            .map(|i| req(i % 2, DocumentType::Html, 80))
            .collect();
        let mut metrics = WindowedMetrics::per_requests(100);
        run_with(&trace, 100, 0.5, &mut metrics);
        let warm = metrics.warmup_churn();
        assert_eq!(warm.evictions, 4, "evictions at indices 1..=4");
        assert_eq!(metrics.total_churn().evictions, 5);
        assert_eq!(metrics.aggregate().requests, 5);
    }

    #[test]
    fn admission_rejects_are_counted() {
        use webcache_core::AdmissionRule;
        let trace: Trace = (0..6u64).map(|i| req(i, DocumentType::Html, 50)).collect();
        let config = SimulationConfig::builder()
            .capacity(ByteSize::new(1_000))
            .warmup_fraction(0.0)
            .admission_rule(AdmissionRule::SecondHit(16))
            .build();
        let mut metrics = WindowedMetrics::per_requests(3);
        Simulator::new(PolicyKind::Lru.build(), config).run_observed(&trace, &mut metrics);
        assert_eq!(
            metrics.total_churn().admission_rejects,
            6,
            "every first-time document is turned away"
        );
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        let _ = WindowedMetrics::per_requests(0);
    }

    #[test]
    fn reuse_resets_between_runs() {
        let trace = mixed_trace(100);
        let mut metrics = WindowedMetrics::per_requests(25);
        run_with(&trace, 2_000, 0.0, &mut metrics);
        let first = metrics.windows().to_vec();
        run_with(&trace, 2_000, 0.0, &mut metrics);
        assert_eq!(metrics.windows(), &first[..], "second run starts fresh");
    }
}
