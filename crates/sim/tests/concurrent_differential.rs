//! Differential tests for the concurrent sharded driver.
//!
//! Two laws pin the driver to the serial simulator:
//!
//! 1. **N = 1 equivalence** — a single-shard engine is the serial cache
//!    with an extra layer of indirection, so its merged report must be
//!    *identical* (every counter, every type) to `Simulator::run_dense`
//!    for any trace, policy, capacity and warm-up.
//! 2. **Client-count independence** — the shard split fixes each
//!    shard's subsequence, so the merged report for a given shard count
//!    must not depend on how many client threads replayed it.

use proptest::prelude::*;

use webcache_core::{AdmissionSpec, PolicyKind, PolicySpec};
use webcache_sim::{
    ConcurrentSimulator, ShardedTrace, SimulationConfig, Simulator, WindowSpec, WindowedMetrics,
};
use webcache_trace::{ByteSize, DenseTrace, DocId, DocumentType, Request, Timestamp, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..60, 0u8..5, 1u64..100_000), 1..400).prop_map(|reqs| {
        reqs.into_iter()
            .enumerate()
            .map(|(i, (doc, ty, size))| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(doc),
                    DocumentType::ALL[ty as usize],
                    ByteSize::new(size),
                )
            })
            .collect()
    })
}

/// Every replacement kind, bare or composed with the TinyLFU admission
/// half — the sharded engine must agree with the serial simulator for
/// the full spec surface, not just the bare kinds.
fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    (
        prop::sample::select(PolicyKind::ALL.to_vec()),
        prop_oneof![Just(AdmissionSpec::All), Just(AdmissionSpec::TinyLfu)],
    )
        .prop_map(|(replacement, admission)| PolicySpec {
            admission,
            replacement,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Law 1: the `N = 1` sharded engine reproduces the serial batched
    /// simulator counter-for-counter, for every policy.
    #[test]
    fn single_shard_engine_matches_serial_cache(
        trace in arb_trace(),
        spec in arb_spec(),
        capacity in 1_000u64..200_000,
        warmup in 0.0f64..0.5,
    ) {
        let dense = DenseTrace::build(&trace);
        let config = SimulationConfig::new(ByteSize::new(capacity))
            .with_warmup_fraction(warmup);
        let serial = Simulator::from_spec(spec, config).run_dense_batched(&dense);
        let concurrent = ConcurrentSimulator::new(spec, config)
            .run(&dense, 1, 1)
            .expect("1 is a valid shard count");
        prop_assert_eq!(&concurrent.policy, &serial.policy);
        prop_assert_eq!(concurrent.by_type(), serial.by_type());
        prop_assert_eq!(concurrent.requests, dense.len() as u64);
        prop_assert!(concurrent.completed);
    }

    /// Law 2: for a fixed shard count, the merged report and every
    /// per-shard summary are byte-identical whether 1, 2, 4 or 8 client
    /// threads replayed the trace.
    #[test]
    fn merged_report_is_independent_of_client_count(
        trace in arb_trace(),
        spec in arb_spec(),
        capacity in 1_000u64..200_000,
        shards in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let dense = DenseTrace::build(&trace);
        let config = SimulationConfig::new(ByteSize::new(capacity));
        let sharded = ShardedTrace::build(&dense, shards).unwrap();
        let sim = ConcurrentSimulator::new(spec, config);
        let baseline = sim.run_sharded(&dense, &sharded, 1);
        for clients in [2usize, 4, 8] {
            let report = sim.run_sharded(&dense, &sharded, clients);
            prop_assert_eq!(report.by_type(), baseline.by_type());
            prop_assert_eq!(report.requests, baseline.requests);
            prop_assert_eq!(report.per_shard.len(), baseline.per_shard.len());
            for (a, b) in report.per_shard.iter().zip(baseline.per_shard.iter()) {
                prop_assert_eq!(a.shard, b.shard);
                prop_assert_eq!(a.requests, b.requests);
                prop_assert_eq!(a.hits, b.hits);
                prop_assert_eq!(a.bytes_requested, b.bytes_requested);
                prop_assert_eq!(a.bytes_hit, b.bytes_hit);
                prop_assert_eq!(&a.by_type, &b.by_type);
            }
        }
    }
}

/// The `N = 1` engine also reproduces the serial *windowed* series:
/// events carry global indices, so a per-shard `WindowedMetrics` on a
/// single shard sees the exact event stream a serial observer would.
#[test]
fn single_shard_windowed_series_matches_serial() {
    let trace: Trace = (0..3_000u64)
        .map(|i| {
            Request::new(
                Timestamp::from_millis(i),
                DocId::new((i * 13 + 7) % 201),
                DocumentType::ALL[(i % 5) as usize],
                ByteSize::new(150 + (i % 77) * 11),
            )
        })
        .collect();
    let dense = DenseTrace::build(&trace);
    let config = SimulationConfig::new(ByteSize::new(30_000)).with_warmup_fraction(0.1);
    let spec = WindowSpec::Requests(500);

    let mut serial_obs = WindowedMetrics::new(spec);
    let serial = Simulator::new(
        PolicyKind::GdStar(webcache_core::CostModel::Packet).build(),
        config,
    )
    .run_dense_batched_observed(&dense, &mut serial_obs);

    let sharded = ShardedTrace::build(&dense, 1).unwrap();
    let (report, observers) =
        ConcurrentSimulator::new(PolicyKind::GdStar(webcache_core::CostModel::Packet), config)
            .run_sharded_observed(&dense, &sharded, 1, |_| WindowedMetrics::new(spec));

    assert_eq!(report.by_type(), serial.by_type());
    assert_eq!(observers.len(), 1);
    let serial_windows = serial_obs.windows();
    let sharded_windows = observers[0].windows();
    assert_eq!(serial_windows.len(), sharded_windows.len());
    for (a, b) in serial_windows.iter().zip(sharded_windows.iter()) {
        assert_eq!(a.start_index, b.start_index);
        assert_eq!(a.end_index, b.end_index);
        assert_eq!(a.by_type, b.by_type);
        assert_eq!(a.churn, b.churn);
    }
}
