//! Property tests for the flight recorder: ring wrap-around retention,
//! JSONL round-trip, and tear-free recording through the concurrent
//! sharded engine.
//!
//! The ring laws pin the forensics pipeline's foundation: whatever the
//! event volume, the recorder retains *exactly* the last `capacity`
//! records in arrival order, and the JSONL dump parses back bit-equal.
//! The concurrent law pins the per-shard recording path of `webcache
//! serve --shards N`: records merged across shard rings must all be
//! internally consistent with the replayed trace (no torn or invented
//! records under client-thread parallelism).

use proptest::prelude::*;

use webcache_core::PolicyKind;
use webcache_obs::{
    merge_sorted, DecisionRecord, EventKind, FlightRecorder, Reason, SharedRecorder,
};
use webcache_sim::{ConcurrentSimulator, FlightObserver, ShardedTrace, SimulationConfig};
use webcache_trace::{ByteSize, DenseTrace, DocId, DocumentType, Request, Timestamp, Trace};

/// A deterministic but varied record for stress-filling rings.
fn sample_record(i: usize) -> DecisionRecord {
    let event = EventKind::ALL[i % EventKind::ALL.len()];
    let reason = match i % 3 {
        0 => Reason::none(),
        1 => Reason::greedy_dual(i as f64 * 0.5, i as f64 * 0.25),
        _ => Reason::frequency(i as f64),
    };
    DecisionRecord {
        index: i as u64,
        doc: (i as u64).wrapping_mul(31) % 97,
        doc_type: (i % 5) as u8,
        size: 100 + i as u64,
        event,
        reason,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wrap-around retention: after `total` records, the ring holds
    /// exactly the last `min(total, capacity)` in arrival order, and
    /// `total()` counts everything ever recorded.
    #[test]
    fn ring_retains_exactly_the_last_capacity_records(
        capacity in 1usize..64,
        total in 0usize..300,
    ) {
        let mut ring = FlightRecorder::new(capacity);
        for i in 0..total {
            ring.record(sample_record(i));
        }
        prop_assert_eq!(ring.total(), total as u64);
        let snapshot = ring.snapshot();
        let retained = total.min(capacity);
        prop_assert_eq!(snapshot.len(), retained);
        for (k, record) in snapshot.iter().enumerate() {
            prop_assert_eq!(record, &sample_record(total - retained + k));
        }
        // `last(n)` is always a suffix of the snapshot.
        for n in [0usize, 1, capacity / 2, capacity, capacity + 5] {
            let last = ring.last(n);
            prop_assert_eq!(last.as_slice(), &snapshot[retained - n.min(retained)..]);
        }
    }

    /// The JSONL dump parses back to exactly the retained records, for
    /// every mix of event kinds and reason payloads.
    #[test]
    fn jsonl_round_trips_bit_equal(
        capacity in 1usize..48,
        total in 0usize..200,
    ) {
        let mut ring = FlightRecorder::new(capacity);
        for i in 0..total {
            ring.record(sample_record(i));
        }
        let parsed = FlightRecorder::parse_jsonl(&ring.to_jsonl()).unwrap();
        prop_assert_eq!(parsed, ring.snapshot());
    }
}

mod concurrent_no_tearing {
    use super::*;

    fn arb_trace() -> impl Strategy<Value = Trace> {
        prop::collection::vec((0u64..48, 0u8..5, 1u64..50_000), 1..300).prop_map(|reqs| {
            reqs.into_iter()
                .enumerate()
                .map(|(i, (doc, ty, size))| {
                    Request::new(
                        Timestamp::from_millis(i as u64),
                        DocId::new(doc),
                        DocumentType::ALL[ty as usize],
                        ByteSize::new(size),
                    )
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Per-shard flight recording under client-thread parallelism
        /// never tears: every merged record matches the trace request at
        /// its index (access events) or a validly resident victim
        /// (evictions — insert before evict, never evicted twice), and
        /// the access records reproduce the replay's hit accounting.
        #[test]
        fn sharded_recording_is_consistent_with_the_trace(
            trace in arb_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..100_000,
            shards in prop::sample::select(vec![1usize, 2, 4, 8]),
            clients in 1usize..5,
        ) {
            let dense = DenseTrace::build(&trace);
            let sharded = ShardedTrace::build(&dense, shards).unwrap();
            let config = SimulationConfig::builder()
                .capacity(ByteSize::new(capacity))
                .warmup_fraction(0.0)
                .build();
            // Generous rings: nothing wraps, so the merged view is the
            // complete event history.
            let recorders: Vec<SharedRecorder> = (0..shards)
                .map(|_| SharedRecorder::new(trace.len() * 3 + 8))
                .collect();
            let (report, _) = ConcurrentSimulator::new(kind, config)
                .run_sharded_observed(&dense, &sharded, clients, |shard| {
                    FlightObserver::new(recorders[shard].clone())
                });
            let merged = merge_sorted(&recorders);

            let mut accesses = 0u64;
            let mut hits = 0u64;
            let mut resident: std::collections::HashSet<u64> =
                std::collections::HashSet::new();
            for r in &merged {
                prop_assert!((r.index as usize) < trace.len(), "index out of range");
                let (slot, size, ty) = dense.request(r.index as usize);
                match r.event {
                    EventKind::Hit | EventKind::Miss | EventKind::ModificationMiss => {
                        accesses += 1;
                        hits += u64::from(r.event == EventKind::Hit);
                        prop_assert_eq!(r.doc, slot as u64, "torn access doc");
                        prop_assert_eq!(r.size, size.as_u64(), "torn access size");
                        prop_assert_eq!(r.doc_type, ty.index() as u8, "torn access type");
                    }
                    EventKind::Insert => {
                        prop_assert_eq!(r.doc, slot as u64, "insert of a foreign doc");
                        // A modification miss re-inserts a resident doc
                        // in place, so repeat inserts are legitimate.
                        resident.insert(r.doc);
                    }
                    EventKind::AdmissionReject => {
                        prop_assert_eq!(r.doc, slot as u64, "reject of a foreign doc");
                    }
                    EventKind::Evict => {
                        prop_assert!(
                            resident.remove(&r.doc),
                            "evicted doc {} was not resident", r.doc
                        );
                        prop_assert!(
                            (r.doc as usize) < dense.distinct_documents(),
                            "victim slot out of range"
                        );
                        prop_assert!(r.size > 0, "victim with zero size");
                    }
                }
            }
            prop_assert_eq!(accesses, trace.len() as u64, "access records lost");
            prop_assert_eq!(hits, report.overall().hits, "hit accounting diverged");
        }
    }
}
