//! Property tests for the windowed percentile histograms behind the
//! tail-latency gauges: the log2-bucket quantile estimator must agree
//! with the exact sorted-sample quantile within one bucket's
//! resolution, and per-shard histogram merging must be order-invariant
//! and lossless versus recording into a single histogram.
//!
//! These laws pin the `/metrics` latency surface of `webcache serve`:
//! the p50/p99 gauges are computed from bucket counts, not samples, so
//! the only tolerated error is the within-bucket interpolation — never
//! a wrong bucket, never a merge artifact.

use proptest::prelude::*;

use webcache_obs::{bucket_index, quantile_from_buckets, WindowedHistogram, BUCKETS};

/// The exact nearest-rank quantile of a sample set (the definition
/// `quantile_from_buckets` approximates through its buckets).
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as f64;
    let rank = ((q * total).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The value range covered by one log2 bucket.
fn bucket_bounds(b: usize) -> (f64, f64) {
    let lo = if b == 0 {
        0.0
    } else {
        (1u64 << (b - 1)) as f64
    };
    let hi = (1u64 << b) as f64;
    (lo, hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// p50/p99 (and the extremes) from the histogram land inside the
    /// log2 bucket of the exact sorted-sample nearest-rank quantile.
    /// Samples stay below the catch-all bucket's lower bound (2^31), as
    /// the catch-all has no upper bound to interpolate toward.
    #[test]
    fn histogram_quantiles_agree_with_exact_within_bucket_resolution(
        samples in prop::collection::vec(1u64..2_000_000_000, 1..300),
        windows in 2usize..6,
    ) {
        let h = WindowedHistogram::new(windows);
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q).expect("non-empty histogram");
            let exact = exact_nearest_rank(&sorted, q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                est >= lo && est <= hi,
                "q={} est={} exact={} bucket=[{}, {}]",
                q, est, exact, lo, hi
            );
        }
    }

    /// Aggregating after rotations equals the bucket-sum over all
    /// retained windows: recording the same samples with rotations
    /// sprinkled in (but fewer than `windows`, so nothing is evicted)
    /// must not change any quantile.
    #[test]
    fn rotation_without_eviction_preserves_quantiles(
        samples in prop::collection::vec(1u64..1_000_000, 1..200),
        windows in 3usize..8,
    ) {
        let plain = WindowedHistogram::new(windows);
        let rotated = WindowedHistogram::new(windows);
        for &s in &samples {
            plain.record(s);
        }
        // Spread the same samples over `windows - 1` rotations: all
        // stay retained, so the aggregate must be identical.
        let chunk = samples.len().div_ceil(windows - 1);
        for (i, &s) in samples.iter().enumerate() {
            if i > 0 && i % chunk == 0 {
                rotated.rotate();
            }
            rotated.record(s);
        }
        prop_assert_eq!(plain.aggregate_buckets(), rotated.aggregate_buckets());
        prop_assert_eq!(plain.quantile(0.5), rotated.quantile(0.5));
        prop_assert_eq!(plain.quantile(0.99), rotated.quantile(0.99));
    }

    /// Per-shard merge is order-invariant and equals single-shard:
    /// scattering samples across N histograms and summing their buckets
    /// (in any shard order) yields exactly the buckets — and thus
    /// exactly the quantiles — of one histogram fed everything.
    #[test]
    fn per_shard_bucket_merge_is_order_invariant_and_lossless(
        samples in prop::collection::vec(1u64..50_000_000, 1..250),
        shards in 1usize..9,
        offset in 0usize..8,
    ) {
        let single = WindowedHistogram::new(4);
        let per_shard: Vec<WindowedHistogram> =
            (0..shards).map(|_| WindowedHistogram::new(4)).collect();
        for (i, &s) in samples.iter().enumerate() {
            single.record(s);
            // Deterministic but uneven scatter across shards.
            per_shard[(i.wrapping_mul(2654435761)) % shards].record(s);
        }
        // Merge in two different shard orders: forward and rotated.
        let merge = |order: &[usize]| {
            let mut merged = [0u64; BUCKETS];
            for &shard in order {
                let buckets = per_shard[shard].aggregate_buckets();
                for (m, b) in merged.iter_mut().zip(buckets.iter()) {
                    *m += b;
                }
            }
            merged
        };
        let forward: Vec<usize> = (0..shards).collect();
        let rotated: Vec<usize> = (0..shards).map(|i| (i + offset) % shards).collect();
        let merged_forward = merge(&forward);
        let merged_rotated = merge(&rotated);
        prop_assert_eq!(merged_forward, merged_rotated);
        prop_assert_eq!(merged_forward, single.aggregate_buckets());
        for q in [0.5, 0.99] {
            prop_assert_eq!(
                quantile_from_buckets(&merged_forward, q),
                single.quantile(q)
            );
        }
    }
}
