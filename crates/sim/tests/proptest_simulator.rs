//! Property tests for the simulator: accounting laws that must hold for
//! any trace, policy and configuration.

use proptest::prelude::*;

use webcache_core::PolicyKind;
use webcache_sim::{ModificationRule, SimulationConfig, Simulator};
use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..40, 0u8..5, 1u64..100_000), 1..300).prop_map(|reqs| {
        reqs.into_iter()
            .enumerate()
            .map(|(i, (doc, ty, size))| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(doc),
                    DocumentType::ALL[ty as usize],
                    ByteSize::new(size),
                )
            })
            .collect()
    })
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Requests, hits and bytes are consistently accounted: hits ≤
    /// requests, bytes_hit ≤ bytes_requested, rates in [0, 1], per-type
    /// totals equal the measured region of the trace.
    #[test]
    fn accounting_invariants(
        trace in arb_trace(),
        kind in arb_policy(),
        capacity in 1_000u64..200_000,
        warmup in 0.0f64..0.5,
    ) {
        let config = SimulationConfig::new(ByteSize::new(capacity))
            .with_warmup_fraction(warmup);
        let report = Simulator::new(kind.instantiate(), config).run(&trace);
        let overall = report.overall();
        let measured = trace.len() - trace.warmup_boundary(warmup);
        prop_assert_eq!(overall.requests, measured as u64);
        prop_assert!(overall.hits <= overall.requests);
        prop_assert!(overall.bytes_hit <= overall.bytes_requested);
        prop_assert!((0.0..=1.0).contains(&overall.hit_rate()));
        prop_assert!((0.0..=1.0).contains(&overall.byte_hit_rate()));
        prop_assert!(overall.modification_misses <= overall.requests);
        for (_, stats) in report.by_type().iter() {
            prop_assert!(stats.hits <= stats.requests);
            prop_assert!(stats.bytes_hit <= stats.bytes_requested);
        }
    }

    /// A cache as large as the whole workload turns every non-first,
    /// non-modified request into a hit (with the 0-warmup config), for
    /// every policy.
    #[test]
    fn infinite_cache_upper_bound(trace in arb_trace(), kind in arb_policy()) {
        let config = SimulationConfig::new(ByteSize::from_gib(8))
            .with_warmup_fraction(0.0);
        let report = Simulator::new(kind.instantiate(), config).run(&trace);
        let overall = report.overall();
        // Compulsory misses: first touch of each doc; plus modification
        // misses (counted separately).
        let cold = trace.distinct_documents() as u64;
        prop_assert_eq!(
            overall.requests - overall.hits,
            cold + overall.modification_misses
        );
    }

    /// The AnyChange rule never yields more hits than the 5%-delta rule
    /// (it strictly widens the set of modification misses) on the same
    /// trace with an infinite cache.
    #[test]
    fn any_change_rule_is_stricter(trace in arb_trace()) {
        let run = |rule| {
            let config = SimulationConfig::new(ByteSize::from_gib(8))
                .with_warmup_fraction(0.0)
                .with_modification_rule(rule);
            Simulator::new(PolicyKind::Lru.instantiate(), config)
                .run(&trace)
                .overall()
        };
        let delta = run(ModificationRule::SizeDelta);
        let any = run(ModificationRule::AnyChange);
        prop_assert!(any.hits <= delta.hits);
        prop_assert!(any.modification_misses >= delta.modification_misses);
    }

    /// For *uniform* document sizes LRU has the stack-inclusion property:
    /// a larger cache never yields fewer hits. (With variable sizes the
    /// property is famously false for byte-capacity caches — one large
    /// admission can evict many soon-reused small documents — which is
    /// exactly why the size-aware schemes of the paper exist.)
    #[test]
    fn lru_inclusion_property_uniform_sizes(
        docs in prop::collection::vec(0u64..40, 1..300),
        size in 1u64..5_000,
        cap_blocks in 1u64..32,
        extra_blocks in 1u64..32,
    ) {
        let trace: Trace = docs
            .iter()
            .enumerate()
            .map(|(i, &d)| Request::new(
                Timestamp::from_millis(i as u64),
                DocId::new(d),
                DocumentType::Html,
                ByteSize::new(size),
            ))
            .collect();
        let run = |blocks: u64| {
            let config = SimulationConfig::new(ByteSize::new(blocks * size))
                .with_warmup_fraction(0.0);
            Simulator::new(PolicyKind::Lru.instantiate(), config)
                .run(&trace)
                .overall()
                .hits
        };
        prop_assert!(run(cap_blocks + extra_blocks) >= run(cap_blocks));
    }

    /// Occupancy sampling takes exactly the requested number of samples
    /// (when the measured region is long enough) and every sample's
    /// fractions sum to ~1 for a non-empty cache.
    #[test]
    fn occupancy_sampling_shape(trace in arb_trace(), samples in 1usize..10) {
        prop_assume!(trace.len() >= samples * 2);
        let config = SimulationConfig::new(ByteSize::from_gib(1))
            .with_warmup_fraction(0.0)
            .with_occupancy_samples(samples);
        let report = Simulator::new(PolicyKind::Lru.instantiate(), config).run(&trace);
        prop_assert!(report.occupancy.len() >= samples.min(trace.len()));
        for s in report.occupancy.samples() {
            let doc_sum: f64 = DocumentType::ALL
                .iter()
                .map(|&ty| s.document_fraction[ty])
                .sum();
            prop_assert!((doc_sum - 1.0).abs() < 1e-9 || doc_sum == 0.0);
        }
    }
}

mod dense_vs_hashed {
    use proptest::prelude::*;
    use webcache_core::{AdmissionRule, PolicyKind};
    use webcache_sim::{ModificationRule, SimulationConfig, Simulator};
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    /// Spreads a small doc index over the u64 space so the differential
    /// actually exercises the sparse-id interning of the hashed path.
    fn sparse_id(doc: u64) -> u64 {
        doc.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0xdead_beef)
    }

    fn arb_sparse_trace() -> impl Strategy<Value = Trace> {
        prop::collection::vec((0u64..48, 0u8..5, 1u64..100_000), 1..300).prop_map(|reqs| {
            reqs.into_iter()
                .enumerate()
                .map(|(i, (doc, ty, size))| {
                    Request::new(
                        Timestamp::from_millis(i as u64),
                        DocId::new(sparse_id(doc)),
                        DocumentType::ALL[ty as usize],
                        ByteSize::new(size),
                    )
                })
                .collect()
        })
    }

    fn arb_admission() -> impl Strategy<Value = AdmissionRule> {
        prop_oneof![
            Just(AdmissionRule::All),
            Just(AdmissionRule::TinyLfu),
            (1u64..50_000).prop_map(|s| AdmissionRule::MaxSize(ByteSize::new(s))),
            (1usize..64).prop_map(AdmissionRule::SecondHit),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The hash-free dense replay is *bit-identical* to the sparse
        /// hashed replay — same hits, same evictions, same occupancy
        /// samples — for every policy, admission rule and config.
        #[test]
        fn dense_replay_matches_hashed_replay(
            trace in arb_sparse_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..200_000,
            warmup in 0.0f64..0.5,
            admission in arb_admission(),
            any_change in prop_oneof![Just(false), Just(true)],
            samples in 0usize..8,
        ) {
            let rule = if any_change {
                ModificationRule::AnyChange
            } else {
                ModificationRule::SizeDelta
            };
            let config = SimulationConfig::new(ByteSize::new(capacity))
                .with_warmup_fraction(warmup)
                .with_admission_rule(admission)
                .with_modification_rule(rule)
                .with_occupancy_samples(samples);
            let dense = Simulator::new(kind.instantiate(), config).run(&trace);
            let hashed = Simulator::new(kind.instantiate(), config).run_hashed(&trace);
            prop_assert_eq!(dense, hashed);
        }
    }

    /// Deterministic spot check over the full policy roster, including a
    /// sweep-style grid of capacities.
    #[test]
    fn all_policies_agree_on_fixed_workload() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let trace: Trace = (0..4_000)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(sparse_id(next() % 300)),
                    DocumentType::ALL[(next() % 5) as usize],
                    ByteSize::new(next() % 20_000 + 1),
                )
            })
            .collect();
        for kind in PolicyKind::ALL {
            for capacity in [10_000u64, 100_000, 1_000_000] {
                let config = SimulationConfig::new(ByteSize::new(capacity));
                let dense = Simulator::new(kind.instantiate(), config).run(&trace);
                let hashed = Simulator::new(kind.instantiate(), config).run_hashed(&trace);
                assert_eq!(dense, hashed, "{kind:?} diverged at capacity {capacity}");
            }
        }
    }

    /// The sweep engine (which replays the shared dense view) produces
    /// exactly the report a hashed cell-by-cell run would.
    #[test]
    fn sweep_grid_matches_hashed_cells() {
        use webcache_sim::CacheSizeSweep;
        let trace: Trace = (0..2_500u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(sparse_id(i * i % 211)),
                    DocumentType::ALL[(i % 5) as usize],
                    ByteSize::new(i % 9_000 + 1),
                )
            })
            .collect();
        let capacities = vec![ByteSize::new(20_000), ByteSize::new(250_000)];
        let report = CacheSizeSweep::new(PolicyKind::ALL.to_vec(), capacities.clone())
            .run_with_threads(&trace, 4);
        assert_eq!(
            report.points().len(),
            PolicyKind::ALL.len() * capacities.len()
        );
        for point in report.points() {
            let config = SimulationConfig::new(point.capacity);
            let hashed = Simulator::from_spec(point.policy, config).run_hashed(&trace);
            assert_eq!(
                point.report, hashed,
                "sweep cell ({:?}, {}) diverged from the hashed replay",
                point.policy, point.capacity
            );
            // And the indexed lookup finds exactly this point.
            let found = report
                .get(point.policy, point.capacity)
                .expect("index lookup");
            assert_eq!(found.report, point.report);
        }
    }
}

mod observer_props {
    use proptest::prelude::*;
    use webcache_core::PolicyKind;
    use webcache_sim::{NoopObserver, SimulationConfig, Simulator, WindowSpec, WindowedMetrics};
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    fn arb_trace() -> impl Strategy<Value = Trace> {
        prop::collection::vec((0u64..40, 0u8..5, 1u64..100_000), 1..300).prop_map(|reqs| {
            reqs.into_iter()
                .enumerate()
                .map(|(i, (doc, ty, size))| {
                    Request::new(
                        Timestamp::from_millis(i as u64),
                        DocId::new(doc),
                        DocumentType::ALL[ty as usize],
                        ByteSize::new(size),
                    )
                })
                .collect()
        })
    }

    fn arb_window() -> impl Strategy<Value = WindowSpec> {
        prop_oneof![
            (1u64..80).prop_map(WindowSpec::Requests),
            (1u64..500_000).prop_map(|b| WindowSpec::Bytes(ByteSize::new(b))),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Attaching an observer must not change the simulation: the
        /// no-op run and the windowed run produce identical reports, and
        /// the window series sums back exactly to the aggregate per-type
        /// counters.
        #[test]
        fn windowed_observer_is_invisible_and_sums_back(
            trace in arb_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..200_000,
            warmup in 0.0f64..0.5,
            window in arb_window(),
        ) {
            let config = SimulationConfig::builder()
                .capacity(ByteSize::new(capacity))
                .warmup_fraction(warmup)
                .build();
            let unobserved = Simulator::new(kind.build(), config)
                .run_observed(&trace, &mut NoopObserver);
            let mut metrics = WindowedMetrics::new(window);
            let observed = Simulator::new(kind.build(), config)
                .run_observed(&trace, &mut metrics);
            prop_assert_eq!(&unobserved, &observed);

            // The windows partition the measured region and sum back.
            prop_assert_eq!(&metrics.aggregate_by_type(), observed.by_type());
            prop_assert_eq!(metrics.aggregate(), observed.overall());
            let warmup_end = trace.warmup_boundary(warmup) as u64;
            if observed.overall().requests > 0 {
                prop_assert_eq!(metrics.windows()[0].start_index, warmup_end);
                prop_assert_eq!(
                    metrics.windows().last().unwrap().end_index,
                    trace.len() as u64
                );
                for pair in metrics.windows().windows(2) {
                    prop_assert_eq!(pair[0].end_index, pair[1].start_index);
                    prop_assert!(pair[0].overall().requests > 0);
                }
            } else {
                prop_assert!(metrics.windows().is_empty());
            }
        }

        /// The dense and hashed replays feed the observer identically:
        /// windowed series collected on either path are equal.
        #[test]
        fn windowed_series_agree_across_replay_paths(
            trace in arb_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..200_000,
            window in arb_window(),
        ) {
            let config = SimulationConfig::builder()
                .capacity(ByteSize::new(capacity))
                .build();
            let mut dense = WindowedMetrics::new(window);
            Simulator::new(kind.build(), config).run_observed(&trace, &mut dense);
            let mut hashed = WindowedMetrics::new(window);
            Simulator::new(kind.build(), config).run_hashed_observed(&trace, &mut hashed);
            prop_assert_eq!(dense.windows(), hashed.windows());
            prop_assert_eq!(dense.warmup_churn(), hashed.warmup_churn());
        }

        /// Eviction accounting balances: everything inserted either
        /// stays resident or was evicted, so the bytes evicted over the
        /// whole run can never exceed the bytes offered to the cache.
        #[test]
        fn eviction_churn_is_bounded_by_traffic(
            trace in arb_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..50_000,
        ) {
            let config = SimulationConfig::builder()
                .capacity(ByteSize::new(capacity))
                .warmup_fraction(0.0)
                .build();
            let mut metrics = WindowedMetrics::per_requests(25);
            Simulator::new(kind.build(), config).run_observed(&trace, &mut metrics);
            let churn = metrics.total_churn();
            let total = metrics.aggregate();
            prop_assert!(churn.bytes_evicted <= total.bytes_requested);
            prop_assert!(churn.evictions <= total.requests);
            prop_assert_eq!(churn.admission_rejects, 0, "default admits everything");
        }
    }
}

mod batched_vs_serial {
    use proptest::prelude::*;
    use webcache_core::{AdmissionRule, PolicyKind};
    use webcache_sim::{
        ModificationRule, NoopObserver, SimulationConfig, Simulator, WindowSpec, WindowedMetrics,
        DEFAULT_BATCH_SIZE,
    };
    use webcache_trace::{ByteSize, DenseTrace, DocId, DocumentType, Request, Timestamp, Trace};

    fn arb_trace() -> impl Strategy<Value = Trace> {
        prop::collection::vec((0u64..48, 0u8..5, 1u64..100_000), 1..300).prop_map(|reqs| {
            reqs.into_iter()
                .enumerate()
                .map(|(i, (doc, ty, size))| {
                    Request::new(
                        Timestamp::from_millis(i as u64),
                        DocId::new(doc),
                        DocumentType::ALL[ty as usize],
                        ByteSize::new(size),
                    )
                })
                .collect()
        })
    }

    fn arb_admission() -> impl Strategy<Value = AdmissionRule> {
        prop_oneof![
            Just(AdmissionRule::All),
            Just(AdmissionRule::TinyLfu),
            (1u64..50_000).prop_map(|s| AdmissionRule::MaxSize(ByteSize::new(s))),
            (1usize..64).prop_map(AdmissionRule::SecondHit),
        ]
    }

    /// Batch sizes biased towards the interesting boundaries: 1 (a batch
    /// per request), tiny batches, the default, and batches larger than
    /// any generated trace (a single batch).
    fn arb_batch() -> impl Strategy<Value = usize> {
        prop_oneof![
            Just(1usize),
            2usize..16,
            Just(DEFAULT_BATCH_SIZE),
            400usize..2_000,
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The batched replay is *bit-identical* to the request-at-a-time
        /// dense replay — same report, same eviction accounting, same
        /// occupancy samples — for every policy, admission rule, batch
        /// size (including 1 and larger-than-the-trace) and config.
        #[test]
        fn batched_replay_matches_serial_replay(
            trace in arb_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..200_000,
            warmup in 0.0f64..0.5,
            admission in arb_admission(),
            any_change in prop_oneof![Just(false), Just(true)],
            samples in 0usize..8,
            batch in arb_batch(),
        ) {
            let rule = if any_change {
                ModificationRule::AnyChange
            } else {
                ModificationRule::SizeDelta
            };
            let config = SimulationConfig::new(ByteSize::new(capacity))
                .with_warmup_fraction(warmup)
                .with_admission_rule(admission)
                .with_modification_rule(rule)
                .with_occupancy_samples(samples);
            let dense = DenseTrace::build(&trace);
            let serial = Simulator::new(kind.build(), config).run_dense(&dense);
            let batched = Simulator::new(kind.build(), config)
                .run_dense_batched_sized(&dense, batch, &mut NoopObserver);
            prop_assert_eq!(serial, batched, "{:?} diverged at batch size {}", kind, batch);
        }

        /// The batched replay feeds observers identically: windowed
        /// series and churn collected on either path are equal.
        #[test]
        fn batched_windowed_series_match_serial(
            trace in arb_trace(),
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
            capacity in 1_000u64..200_000,
            window in prop_oneof![
                (1u64..80).prop_map(WindowSpec::Requests),
                (1u64..500_000).prop_map(|b| WindowSpec::Bytes(ByteSize::new(b))),
            ],
            batch in arb_batch(),
        ) {
            let config = SimulationConfig::builder()
                .capacity(ByteSize::new(capacity))
                .build();
            let dense = DenseTrace::build(&trace);
            let mut serial = WindowedMetrics::new(window);
            let s = Simulator::new(kind.build(), config).run_dense_observed(&dense, &mut serial);
            let mut batched = WindowedMetrics::new(window);
            let b = Simulator::new(kind.build(), config)
                .run_dense_batched_sized(&dense, batch, &mut batched);
            prop_assert_eq!(s, b);
            prop_assert_eq!(serial.windows(), batched.windows());
            prop_assert_eq!(serial.warmup_churn(), batched.warmup_churn());
            prop_assert_eq!(serial.total_churn(), batched.total_churn());
        }
    }

    /// Deterministic spot check: every policy, a grid of capacities and
    /// batch sizes around the boundaries, on a workload long enough to
    /// force sustained eviction churn through the deferred heaps.
    #[test]
    fn all_policies_agree_across_batch_sizes_on_fixed_workload() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let trace: Trace = (0..4_000)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i),
                    DocId::new(next() % 300),
                    DocumentType::ALL[(next() % 5) as usize],
                    ByteSize::new(next() % 20_000 + 1),
                )
            })
            .collect();
        let dense = DenseTrace::build(&trace);
        for kind in PolicyKind::ALL {
            for capacity in [10_000u64, 100_000, 1_000_000] {
                let config = SimulationConfig::new(ByteSize::new(capacity));
                let serial = Simulator::new(kind.build(), config).run_dense(&dense);
                for batch in [1usize, 2, 7, DEFAULT_BATCH_SIZE, trace.len() + 1] {
                    let batched = Simulator::new(kind.build(), config).run_dense_batched_sized(
                        &dense,
                        batch,
                        &mut NoopObserver,
                    );
                    assert_eq!(
                        serial, batched,
                        "{kind:?} diverged at capacity {capacity}, batch {batch}"
                    );
                }
            }
        }
    }
}

mod hierarchy_props {
    use proptest::prelude::*;
    use webcache_core::PolicyKind;
    use webcache_sim::{simulate_hierarchy, HierarchyConfig};
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    fn trace_of(reqs: &[(u64, u32)]) -> Trace {
        reqs.iter()
            .enumerate()
            .map(|(i, &(doc, size))| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(doc),
                    DocumentType::Html,
                    ByteSize::new(size as u64 + 1),
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Hierarchy accounting is conservative: parent requests equal
        /// leaf misses, and combined rates stay within [0, 1].
        #[test]
        fn hierarchy_accounting(
            reqs in prop::collection::vec((0u64..30, 0u32..10_000), 1..300),
            leaves in 1usize..5,
            leaf_cap in 1_000u64..100_000,
            parent_cap in 1_000u64..1_000_000,
        ) {
            let config = HierarchyConfig::new(
                leaves,
                ByteSize::new(leaf_cap),
                ByteSize::new(parent_cap),
            )
            .with_leaf_policy(PolicyKind::Lru)
            .with_parent_policy(PolicyKind::LfuDa)
            .with_warmup_fraction(0.0);
            let r = simulate_hierarchy(&trace_of(&reqs), config);
            prop_assert_eq!(r.leaf.requests, reqs.len() as u64);
            prop_assert_eq!(r.parent.requests, r.leaf.requests - r.leaf.hits);
            prop_assert!(r.parent.hits <= r.parent.requests);
            let chr = r.combined_hit_rate();
            prop_assert!((0.0..=1.0).contains(&chr));
            let cbhr = r.combined_byte_hit_rate();
            prop_assert!((0.0..=1.0).contains(&cbhr));
            // Combined rate is at least the leaf rate.
            prop_assert!(chr >= r.leaf.hit_rate() - 1e-12);
        }

        /// With one leaf, a hierarchy's combined hit count is at least a
        /// single cache's of the same leaf size (the parent only adds).
        #[test]
        fn parent_never_hurts(
            reqs in prop::collection::vec((0u64..20, 0u32..5_000), 1..200),
            cap in 1_000u64..50_000,
        ) {
            use webcache_sim::{SimulationConfig, Simulator};
            let trace = trace_of(&reqs);
            let hierarchy = simulate_hierarchy(
                &trace,
                HierarchyConfig::new(1, ByteSize::new(cap), ByteSize::new(cap * 4))
                    .with_leaf_policy(PolicyKind::Lru)
                    .with_parent_policy(PolicyKind::Lru)
                    .with_warmup_fraction(0.0),
            );
            let single = Simulator::new(
                PolicyKind::Lru.instantiate(),
                SimulationConfig::new(ByteSize::new(cap)).with_warmup_fraction(0.0),
            )
            .run(&trace);
            let combined_hits = hierarchy.leaf.hits + hierarchy.parent.hits;
            prop_assert!(combined_hits >= single.overall().hits);
        }
    }
}

mod oracle_props {
    use proptest::prelude::*;
    use webcache_core::PolicyKind;
    use webcache_sim::{clairvoyant_overall, SimulationConfig, Simulator};
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// With uniform sizes the clairvoyant policy is Belady's MIN:
        /// no online policy may beat it, at any capacity.
        #[test]
        fn oracle_dominates_online_policies(
            docs in prop::collection::vec(0u64..30, 1..300),
            blocks in 1u64..24,
            kind in prop::sample::select(PolicyKind::ALL.to_vec()),
        ) {
            let size = 100u64;
            let trace: Trace = docs
                .iter()
                .enumerate()
                .map(|(i, &d)| Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(d),
                    DocumentType::Html,
                    ByteSize::new(size),
                ))
                .collect();
            let config = SimulationConfig::new(ByteSize::new(blocks * size))
                .with_warmup_fraction(0.0);
            let oracle = clairvoyant_overall(&trace, &config);
            let online = Simulator::new(kind.instantiate(), config).run(&trace).overall();
            prop_assert!(
                oracle.hits >= online.hits,
                "{kind} beat MIN: {} vs {}", online.hits, oracle.hits
            );
            prop_assert_eq!(oracle.requests, online.requests);
        }
    }
}
