//! Spec-compatibility differential tests.
//!
//! The `PolicySpec` redesign must not move a single counter for the 13
//! pre-cohort policies: a spec with the default `All` admission half is
//! pinned bit-for-bit against the construction surface it replaced —
//! `Simulator::new(kind.build(), ..)` and `Cache::new` — across the
//! whole [`PolicyKind::LEGACY`] roster.

use webcache_core::{AdmissionSpec, Cache, PolicyKind, PolicySpec};
use webcache_sim::{SimulationConfig, Simulator};
use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

/// A deterministic mixed workload with sustained eviction churn at the
/// capacities below: 6000 requests over 400 documents, five types,
/// sizes up to 30 KB.
fn fixed_trace() -> Trace {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..6_000u64)
        .map(|i| {
            Request::new(
                Timestamp::from_millis(i),
                DocId::new(next() % 400),
                DocumentType::ALL[(next() % 5) as usize],
                ByteSize::new(next() % 30_000 + 1),
            )
        })
        .collect()
}

/// `Simulator::from_spec` with a bare kind (admission `All`) reproduces
/// the legacy `Simulator::new(kind.build(), ..)` report bit-for-bit —
/// every counter, every type, every occupancy sample — for each legacy
/// policy across a capacity grid.
#[test]
fn from_spec_matches_legacy_simulator_entry_point() {
    let trace = fixed_trace();
    for kind in PolicyKind::LEGACY {
        for capacity in [20_000u64, 200_000, 2_000_000] {
            let config = SimulationConfig::new(ByteSize::new(capacity))
                .with_warmup_fraction(0.2)
                .with_occupancy_samples(4);
            let legacy = Simulator::new(kind.build(), config).run(&trace);
            let spec = PolicySpec::from(kind);
            assert_eq!(spec.admission, AdmissionSpec::All, "{kind:?}");
            let modern = Simulator::from_spec(spec, config).run(&trace);
            assert_eq!(legacy, modern, "{kind:?} diverged at capacity {capacity}");
        }
    }
}

/// An `All`-admission spec must not clobber an admission rule the
/// config already carries: `from_spec` folds the spec's admission half
/// over the config only when the spec names one.
#[test]
fn all_admission_spec_preserves_config_carried_rule() {
    let trace = fixed_trace();
    for kind in PolicyKind::LEGACY {
        let config = SimulationConfig::new(ByteSize::new(100_000))
            .with_admission_rule(AdmissionSpec::SecondHit(16));
        let legacy = Simulator::new(kind.build(), config).run(&trace);
        let modern = Simulator::from_spec(kind, config).run(&trace);
        assert_eq!(legacy, modern, "{kind:?} diverged under config admission");
        assert_eq!(modern.policy, format!("2HIT:16+{}", kind.label()));
    }
}

/// `Cache::with_spec` on a bare kind is the legacy `Cache::new`: the
/// same access/insert stream produces the same hit sequence, the same
/// eviction victims in the same order, and the same label.
#[test]
fn with_spec_drives_identically_to_cache_new() {
    let trace = fixed_trace();
    let capacity = ByteSize::new(150_000);
    for kind in PolicyKind::LEGACY {
        let mut legacy = Cache::new(capacity, kind.build());
        let mut modern = Cache::with_spec(capacity, kind);
        assert_eq!(legacy.policy_label(), modern.policy_label(), "{kind:?}");
        for (i, req) in trace.iter().enumerate() {
            let hit_legacy = legacy.access(req.doc);
            let hit_modern = modern.access(req.doc);
            assert_eq!(hit_legacy, hit_modern, "{kind:?} hit diverged at {i}");
            if !hit_legacy {
                let out_legacy = legacy.insert(req.doc, req.doc_type, req.size);
                let out_modern = modern.insert(req.doc, req.doc_type, req.size);
                assert_eq!(
                    out_legacy.evicted, out_modern.evicted,
                    "{kind:?} victims diverged at {i}"
                );
            }
        }
    }
}
