//! Full trace characterization — the data behind Tables 1–5 of the paper.

use serde::{Deserialize, Serialize};

use webcache_trace::{ByteSize, DocumentType, Trace, TypeMap};

use crate::correlation;
use crate::descriptive::Summary;
use crate::popularity;
use crate::table::{fmt_opt, fmt_pct, Table};

/// Trace-level properties (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceProperties {
    /// Number of distinct documents.
    pub distinct_documents: u64,
    /// Sum of distinct document sizes ("Overall Size").
    pub overall_size: ByteSize,
    /// Number of requests.
    pub total_requests: u64,
    /// Total bytes transferred ("Requested Data").
    pub requested_bytes: ByteSize,
}

/// Per-type share of the workload (Tables 2 and 3), as fractions in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TypeBreakdown {
    /// Fraction of distinct documents of this type.
    pub distinct_documents: f64,
    /// Fraction of the overall size contributed by this type.
    pub overall_size: f64,
    /// Fraction of requests to this type.
    pub total_requests: f64,
    /// Fraction of requested bytes to this type.
    pub requested_bytes: f64,
}

/// Per-type size statistics and locality parameters (Tables 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TypeStatistics {
    /// Statistics of distinct-document sizes, in bytes.
    pub document_size: Summary,
    /// Statistics of per-request transfer sizes, in bytes.
    pub transfer_size: Summary,
    /// Popularity slope α (None when the type has < 2 distinct documents).
    pub alpha: Option<f64>,
    /// Temporal-correlation slope β (None when gaps populate < 2 buckets).
    pub beta: Option<f64>,
}

/// The complete characterization of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceCharacterization {
    /// Table 1 quantities.
    pub properties: TraceProperties,
    /// Table 2/3 rows, one per document type.
    pub breakdown: TypeMap<TypeBreakdown>,
    /// Table 4/5 rows, one per document type.
    pub statistics: TypeMap<TypeStatistics>,
}

impl TraceCharacterization {
    /// Measures every characterization quantity of `trace`.
    pub fn measure(trace: &Trace) -> Self {
        let doc_sizes = trace.document_sizes();
        // Document type lookup: the type a document was requested as.
        let mut doc_types: Vec<(u64, DocumentType)> =
            trace.iter().map(|r| (r.doc.as_u64(), r.doc_type)).collect();
        doc_types.sort_unstable_by_key(|&(id, _)| id);
        doc_types.dedup_by_key(|&mut (id, _)| id);
        let type_of = |id: u64| -> DocumentType {
            let idx = doc_types
                .binary_search_by_key(&id, |&(d, _)| d)
                .expect("document seen in trace");
            doc_types[idx].1
        };

        let properties = TraceProperties {
            distinct_documents: doc_sizes.len() as u64,
            overall_size: trace.overall_size(),
            total_requests: trace.len() as u64,
            requested_bytes: trace.requested_bytes(),
        };

        // Per-type tallies.
        let mut distinct: TypeMap<u64> = TypeMap::default();
        let mut size_sum: TypeMap<ByteSize> = TypeMap::default();
        let mut doc_size_samples: TypeMap<Vec<f64>> = TypeMap::default();
        for &(id, size) in &doc_sizes {
            let ty = type_of(id.as_u64());
            distinct[ty] += 1;
            size_sum[ty] += size;
            doc_size_samples[ty].push(size.as_f64());
        }
        let requests = trace.requests_by_type();
        let req_bytes = trace.requested_bytes_by_type();
        let mut transfer_samples: TypeMap<Vec<f64>> = TypeMap::default();
        for r in trace {
            transfer_samples[r.doc_type].push(r.size.as_f64());
        }

        let frac = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };
        let breakdown = TypeMap::from_fn(|ty| TypeBreakdown {
            distinct_documents: frac(distinct[ty] as f64, properties.distinct_documents as f64),
            overall_size: frac(size_sum[ty].as_f64(), properties.overall_size.as_f64()),
            total_requests: frac(requests[ty] as f64, properties.total_requests as f64),
            requested_bytes: frac(req_bytes[ty].as_f64(), properties.requested_bytes.as_f64()),
        });

        let statistics = TypeMap::from_fn(|ty| TypeStatistics {
            document_size: Summary::from_samples(&doc_size_samples[ty]),
            transfer_size: Summary::from_samples(&transfer_samples[ty]),
            alpha: popularity::alpha(trace, Some(ty)),
            beta: correlation::beta(trace, Some(ty)),
        });

        TraceCharacterization {
            properties,
            breakdown,
            statistics,
        }
    }

    /// Renders the Table 1 analogue ("Properties of the trace").
    pub fn properties_table(&self, trace_name: &str) -> Table {
        let p = &self.properties;
        let mut t = Table::new(vec!["Property".into(), trace_name.into()])
            .with_title("Table 1. Properties of the trace");
        t.push_row(vec![
            "Distinct Documents".into(),
            p.distinct_documents.to_string(),
        ]);
        t.push_row(vec![
            "Overall Size (GB)".into(),
            format!("{:.2}", p.overall_size.as_gib()),
        ]);
        t.push_row(vec!["Total Requests".into(), p.total_requests.to_string()]);
        t.push_row(vec![
            "Requested Data (GB)".into(),
            format!("{:.2}", p.requested_bytes.as_gib()),
        ]);
        t
    }

    /// Renders the Table 2/3 analogue (per-type workload shares, in %).
    pub fn breakdown_table(&self, trace_name: &str) -> Table {
        let mut headers = vec!["".to_owned()];
        headers.extend(DocumentType::ALL.iter().map(|ty| ty.label().to_owned()));
        let mut t = Table::new(headers).with_title(format!(
            "{trace_name}: Workload characteristics broken down into document types (%)"
        ));
        type Row = (&'static str, fn(&TypeBreakdown) -> f64);
        let rows: [Row; 4] = [
            ("% of Distinct Documents", |b| b.distinct_documents),
            ("% of Overall Size", |b| b.overall_size),
            ("% of Total Requests", |b| b.total_requests),
            ("% of Requested Data", |b| b.requested_bytes),
        ];
        for (label, get) in rows {
            let mut row = vec![label.to_owned()];
            row.extend(
                DocumentType::ALL
                    .iter()
                    .map(|&ty| fmt_pct(get(&self.breakdown[ty]))),
            );
            t.push_row(row);
        }
        t
    }

    /// Renders the Table 4/5 analogue (per-type size statistics and
    /// locality parameters).
    pub fn statistics_table(&self, trace_name: &str) -> Table {
        const KIB: f64 = 1024.0;
        let mut headers = vec!["".to_owned()];
        headers.extend(DocumentType::ALL.iter().map(|ty| ty.label().to_owned()));
        let mut t = Table::new(headers).with_title(format!(
            "{trace_name}: Breakdown of document sizes and temporal locality"
        ));
        type Row = (&'static str, Box<dyn Fn(&TypeStatistics) -> String>);
        let rows: [Row; 8] = [
            (
                "Mean of Document Size (KB)",
                Box::new(|s: &TypeStatistics| format!("{:.2}", s.document_size.mean / KIB)),
            ),
            (
                "Median of Document Size (KB)",
                Box::new(|s| format!("{:.2}", s.document_size.median / KIB)),
            ),
            (
                "CoV of Document Size",
                Box::new(|s| format!("{:.2}", s.document_size.cov())),
            ),
            (
                "Mean of Transfer Size (KB)",
                Box::new(|s| format!("{:.2}", s.transfer_size.mean / KIB)),
            ),
            (
                "Median of Transfer Size (KB)",
                Box::new(|s| format!("{:.2}", s.transfer_size.median / KIB)),
            ),
            (
                "CoV of Transfer Size",
                Box::new(|s| format!("{:.2}", s.transfer_size.cov())),
            ),
            (
                "Slope of Popularity Distribution (alpha)",
                Box::new(|s| fmt_opt(s.alpha)),
            ),
            (
                "Degree of Temporal Correlation (beta)",
                Box::new(|s| fmt_opt(s.beta)),
            ),
        ];
        for (label, get) in rows {
            let mut row = vec![label.to_owned()];
            row.extend(
                DocumentType::ALL
                    .iter()
                    .map(|&ty| get(&self.statistics[ty])),
            );
            t.push_row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{DocId, Request, Timestamp};

    fn req(doc: u64, ty: DocumentType, size: u64) -> Request {
        Request::new(Timestamp::ZERO, DocId::new(doc), ty, ByteSize::new(size))
    }

    fn mixed_trace() -> Trace {
        vec![
            req(0, DocumentType::Image, 1000),
            req(1, DocumentType::Image, 3000),
            req(0, DocumentType::Image, 1000),
            req(2, DocumentType::Html, 2000),
            req(3, DocumentType::MultiMedia, 100_000),
        ]
        .into()
    }

    #[test]
    fn properties_match_trace() {
        let ch = TraceCharacterization::measure(&mixed_trace());
        assert_eq!(ch.properties.distinct_documents, 4);
        assert_eq!(ch.properties.total_requests, 5);
        assert_eq!(
            ch.properties.overall_size.as_u64(),
            1000 + 3000 + 2000 + 100_000
        );
        assert_eq!(
            ch.properties.requested_bytes.as_u64(),
            1000 + 3000 + 1000 + 2000 + 100_000
        );
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let ch = TraceCharacterization::measure(&mixed_trace());
        let sums = DocumentType::ALL.iter().fold([0.0; 4], |mut acc, &ty| {
            let b = &ch.breakdown[ty];
            acc[0] += b.distinct_documents;
            acc[1] += b.overall_size;
            acc[2] += b.total_requests;
            acc[3] += b.requested_bytes;
            acc
        });
        for s in sums {
            assert!((s - 1.0).abs() < 1e-9, "fractions must sum to 1, got {s}");
        }
    }

    #[test]
    fn breakdown_respects_type_shares() {
        let ch = TraceCharacterization::measure(&mixed_trace());
        let img = &ch.breakdown[DocumentType::Image];
        assert!((img.distinct_documents - 0.5).abs() < 1e-9);
        assert!((img.total_requests - 0.6).abs() < 1e-9);
        let mm = &ch.breakdown[DocumentType::MultiMedia];
        assert!(mm.requested_bytes > 0.9, "multimedia dominates bytes");
    }

    #[test]
    fn statistics_use_distinct_docs_for_document_size() {
        let ch = TraceCharacterization::measure(&mixed_trace());
        let img = &ch.statistics[DocumentType::Image];
        // Distinct image docs: 1000 and 3000 -> mean 2000.
        assert_eq!(img.document_size.mean, 2000.0);
        assert_eq!(img.document_size.count, 2);
        // Transfers: 1000, 3000, 1000 -> mean 5000/3.
        assert!((img.transfer_size.mean - 5000.0 / 3.0).abs() < 1e-9);
        assert_eq!(img.transfer_size.count, 3);
    }

    #[test]
    fn empty_types_have_default_stats() {
        let ch = TraceCharacterization::measure(&mixed_trace());
        let app = &ch.statistics[DocumentType::Application];
        assert_eq!(app.document_size.count, 0);
        assert_eq!(app.alpha, None);
        assert_eq!(app.beta, None);
    }

    #[test]
    fn tables_render_all_rows() {
        let ch = TraceCharacterization::measure(&mixed_trace());
        assert_eq!(ch.properties_table("DFN").len(), 4);
        assert_eq!(ch.breakdown_table("DFN").len(), 4);
        assert_eq!(ch.statistics_table("DFN").len(), 8);
        let text = ch.breakdown_table("DFN").render();
        assert!(text.contains("Multi Media"));
    }

    #[test]
    fn empty_trace_characterization_is_all_zero() {
        let ch = TraceCharacterization::measure(&Trace::new());
        assert_eq!(ch.properties, TraceProperties::default());
        assert_eq!(ch.breakdown[DocumentType::Image], TypeBreakdown::default());
    }
}
