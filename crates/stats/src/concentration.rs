//! Reference concentration and one-timer analysis.
//!
//! Arlitt & Williamson's workload characterization (the paper's
//! reference \[2\]) popularized two summary views of popularity skew that
//! complement the slope α:
//!
//! * the **concentration curve** — the fraction of all requests absorbed
//!   by the most popular `x` fraction of documents ("10 % of documents
//!   receive 90 % of requests"), and
//! * the **one-timer share** — the fraction of documents referenced
//!   exactly once, which web caches store but never profit from.
//!
//! Both drive replacement-policy behaviour directly: high concentration
//! rewards frequency awareness (LFU-DA, GD\*), a large one-timer share
//! rewards admission filters and fast demotion (SLRU).

use serde::{Deserialize, Serialize};

use webcache_trace::{DocumentType, Trace};

use crate::popularity::request_counts;

/// Summary of popularity concentration in a request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Concentration {
    /// Per-document reference counts, descending.
    counts: Vec<u64>,
    /// Total number of requests.
    total: u64,
}

impl Concentration {
    /// Measures a trace, optionally restricted to one document type.
    pub fn measure(trace: &Trace, doc_type: Option<DocumentType>) -> Self {
        let mut counts = request_counts(trace, doc_type);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = counts.iter().sum();
        Concentration { counts, total }
    }

    /// Number of distinct documents.
    pub fn documents(&self) -> usize {
        self.counts.len()
    }

    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.total
    }

    /// Fraction of requests going to the most popular `doc_fraction` of
    /// documents (`0 ≤ doc_fraction ≤ 1`).
    ///
    /// # Panics
    ///
    /// Panics when `doc_fraction` is outside `[0, 1]`.
    ///
    /// ```
    /// use webcache_stats::concentration::Concentration;
    /// use webcache_trace::{Trace, Request, Timestamp, DocId, DocumentType, ByteSize};
    ///
    /// // doc 0 gets 9 requests, docs 1..=9 one each.
    /// let trace: Trace = (0..18u64)
    ///     .map(|i| Request::new(
    ///         Timestamp::ZERO,
    ///         DocId::new(if i < 9 { 0 } else { i - 8 }),
    ///         DocumentType::Html,
    ///         ByteSize::new(1),
    ///     ))
    ///     .collect();
    /// let c = Concentration::measure(&trace, None);
    /// assert_eq!(c.request_share_of_top(0.1), 0.5); // top 1 of 10 docs = 9/18
    /// ```
    pub fn request_share_of_top(&self, doc_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&doc_fraction),
            "document fraction out of range"
        );
        if self.total == 0 {
            return 0.0;
        }
        let k = (self.counts.len() as f64 * doc_fraction).round() as usize;
        let head: u64 = self.counts.iter().take(k).sum();
        head as f64 / self.total as f64
    }

    /// Fraction of documents referenced exactly once.
    pub fn one_timer_share(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let ones = self.counts.iter().filter(|&&c| c == 1).count();
        ones as f64 / self.counts.len() as f64
    }

    /// Fraction of *requests* that go to one-timer documents (each such
    /// request is an unavoidable miss).
    pub fn one_timer_request_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let ones = self.counts.iter().filter(|&&c| c == 1).count();
        ones as f64 / self.total as f64
    }

    /// The maximum achievable hit rate of any cache on this stream: every
    /// non-first reference hits (ignoring modifications).
    pub fn hit_rate_ceiling(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.total - self.counts.len() as u64) as f64 / self.total as f64
    }

    /// `(document share, request share)` points of the concentration
    /// curve at the given resolution, suitable for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a curve needs at least two points");
        (0..=points)
            .map(|i| {
                let x = i as f64 / points as f64;
                (x, self.request_share_of_top(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{ByteSize, DocId, Request, Timestamp};

    fn trace_from_counts(counts: &[u64]) -> Trace {
        let mut reqs = Vec::new();
        for (doc, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                reqs.push(Request::new(
                    Timestamp::ZERO,
                    DocId::new(doc as u64),
                    DocumentType::Html,
                    ByteSize::new(1),
                ));
            }
        }
        reqs.into()
    }

    #[test]
    fn skewed_stream_concentrates() {
        let c = Concentration::measure(&trace_from_counts(&[90, 1, 1, 1, 1, 1, 1, 1, 1, 1]), None);
        assert_eq!(c.documents(), 10);
        assert_eq!(c.requests(), 99);
        assert!((c.request_share_of_top(0.1) - 90.0 / 99.0).abs() < 1e-12);
        assert_eq!(c.request_share_of_top(1.0), 1.0);
        assert_eq!(c.request_share_of_top(0.0), 0.0);
    }

    #[test]
    fn one_timer_measures() {
        let c = Concentration::measure(&trace_from_counts(&[5, 1, 1, 1]), None);
        assert_eq!(c.one_timer_share(), 0.75);
        assert_eq!(c.one_timer_request_share(), 3.0 / 8.0);
        // Ceiling: 8 requests, 4 compulsory misses.
        assert_eq!(c.hit_rate_ceiling(), 0.5);
    }

    #[test]
    fn uniform_stream_has_linear_curve() {
        let c = Concentration::measure(&trace_from_counts(&[3; 50]), None);
        for (x, y) in c.curve(10) {
            assert!((x - y).abs() < 0.05, "({x}, {y})");
        }
        assert_eq!(c.one_timer_share(), 0.0);
    }

    #[test]
    fn curve_is_monotone_and_concave_for_any_stream() {
        let c = Concentration::measure(&trace_from_counts(&[13, 8, 5, 3, 2, 1, 1, 1]), None);
        let curve = c.curve(8);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "monotone");
        }
        // Increments are non-increasing (counts sorted descending).
        let increments: Vec<f64> = curve.windows(2).map(|w| w[1].1 - w[0].1).collect();
        for w in increments.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "concave: {increments:?}");
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let c = Concentration::measure(&Trace::new(), None);
        assert_eq!(c.documents(), 0);
        assert_eq!(c.request_share_of_top(0.5), 0.0);
        assert_eq!(c.one_timer_share(), 0.0);
        assert_eq!(c.hit_rate_ceiling(), 0.0);
    }

    #[test]
    fn type_filter_restricts() {
        let mut reqs = Vec::new();
        for i in 0..4u64 {
            reqs.push(Request::new(
                Timestamp::ZERO,
                DocId::new(0),
                DocumentType::Image,
                ByteSize::new(1),
            ));
            reqs.push(Request::new(
                Timestamp::ZERO,
                DocId::new(10 + i),
                DocumentType::Html,
                ByteSize::new(1),
            ));
        }
        let t: Trace = reqs.into();
        let img = Concentration::measure(&t, Some(DocumentType::Image));
        assert_eq!(img.documents(), 1);
        assert_eq!(img.requests(), 4);
        let html = Concentration::measure(&t, Some(DocumentType::Html));
        assert_eq!(html.one_timer_share(), 1.0);
    }

    #[test]
    #[should_panic(expected = "document fraction")]
    fn rejects_bad_fraction() {
        let c = Concentration::measure(&Trace::new(), None);
        let _ = c.request_share_of_top(1.5);
    }
}
