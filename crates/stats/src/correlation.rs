//! Temporal-correlation slope (β) estimation.
//!
//! Temporal correlation captures the time between two successive
//! references to the *same* document: the probability that a document is
//! requested again after `n` intervening requests is `P ∝ n^−β` for
//! equally popular documents (paper, Section 2). Large β means strong
//! short-term correlation (multi media, application documents); small β
//! means nearly uncorrelated successive requests (images).
//!
//! β is measured from the distribution of inter-reference gaps — the
//! number of requests in the overall stream between successive references
//! to a document — fitted on a log/log scale over a base-2 bucketed
//! histogram.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use webcache_trace::{DocumentType, Trace};

use crate::regression::{fit_line_weighted, LineFit};

/// Range of β values considered physical; fits are clamped into it.
pub const BETA_RANGE: (f64, f64) = (0.05, 4.0);

/// A base-2 log-bucketed histogram of inter-reference gaps.
///
/// `buckets[b]` counts gaps in `[2^b, 2^(b+1))`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapHistogram {
    buckets: Vec<u64>,
    samples: u64,
}

impl Default for GapHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl GapHistogram {
    /// Creates an empty histogram covering gaps up to 2^48.
    pub fn new() -> Self {
        GapHistogram {
            buckets: vec![0; 48],
            samples: 0,
        }
    }

    /// Records one gap (clamped to ≥ 1).
    pub fn record(&mut self, gap: u64) {
        let gap = gap.max(1);
        let bucket = (63 - gap.leading_zeros()) as usize;
        let bucket = bucket.min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
        self.samples += 1;
    }

    /// Number of recorded gaps.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &GapHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.samples += other.samples;
    }

    /// Fits `log density = −β · log gap + c` by count-weighted least
    /// squares over the non-empty buckets. Returns `None` with fewer than
    /// two populated buckets.
    pub fn beta_fit(&self) -> Option<LineFit> {
        let mut points = Vec::new();
        for (b, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let width = (1u64 << b) as f64;
            let center = 1.5 * width;
            let density = count as f64 / (self.samples as f64 * width);
            points.push((center.ln(), density.ln(), count as f64));
        }
        fit_line_weighted(&points)
    }

    /// The fitted β (the magnitude of the negative slope), clamped to
    /// [`BETA_RANGE`].
    pub fn beta(&self) -> Option<f64> {
        self.beta_fit()
            .map(|fit| (-fit.slope).clamp(BETA_RANGE.0, BETA_RANGE.1))
    }
}

/// Collects the inter-reference gap histogram of a trace.
///
/// Gaps are measured in positions of the *overall* request stream. When
/// `doc_type` is given, only references to documents of that type
/// contribute gaps (but positions still count every request, matching how
/// the paper breaks β down by type). Only documents whose total reference
/// count lies in `[min_count, max_count]` contribute, which implements the
/// "equally popular documents" control — pass `(2, u64::MAX)` to use every
/// re-referenced document.
pub fn gap_histogram(
    trace: &Trace,
    doc_type: Option<DocumentType>,
    min_count: u64,
    max_count: u64,
) -> GapHistogram {
    // Pass 1: total reference count per document (under the type filter).
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in trace {
        if doc_type.is_none_or(|ty| ty == r.doc_type) {
            *counts.entry(r.doc.as_u64()).or_insert(0) += 1;
        }
    }
    // Pass 2: gaps for documents within the popularity band.
    let mut last_pos: HashMap<u64, u64> = HashMap::new();
    let mut hist = GapHistogram::new();
    for (pos, r) in trace.iter().enumerate() {
        if doc_type.is_some_and(|ty| ty != r.doc_type) {
            continue;
        }
        let id = r.doc.as_u64();
        let count = counts[&id];
        if !(min_count..=max_count).contains(&count) {
            continue;
        }
        let pos = pos as u64;
        if let Some(prev) = last_pos.insert(id, pos) {
            hist.record(pos - prev);
        }
    }
    hist
}

/// Estimates β for a trace, optionally restricted to one document type.
///
/// Uses every document referenced at least twice. Returns `None` when the
/// gap histogram populates fewer than two buckets.
pub fn beta(trace: &Trace, doc_type: Option<DocumentType>) -> Option<f64> {
    gap_histogram(trace, doc_type, 2, u64::MAX).beta()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{ByteSize, DocId, Request, Timestamp};

    fn req(doc: u64, ty: DocumentType) -> Request {
        Request::new(Timestamp::ZERO, DocId::new(doc), ty, ByteSize::new(1))
    }

    /// Builds a trace where one document's re-references arrive with the
    /// given gaps, padded with unique one-shot documents.
    fn trace_with_gaps(gaps: &[u64]) -> Trace {
        let mut requests = Vec::new();
        let mut filler = 1000u64;
        requests.push(req(0, DocumentType::Html));
        for &g in gaps {
            for _ in 0..g.saturating_sub(1) {
                requests.push(req(filler, DocumentType::Other));
                filler += 1;
            }
            requests.push(req(0, DocumentType::Html));
        }
        requests.into()
    }

    #[test]
    fn gaps_are_measured_in_stream_positions() {
        let t = trace_with_gaps(&[3, 1, 8]);
        let hist = gap_histogram(&t, Some(DocumentType::Html), 2, u64::MAX);
        assert_eq!(hist.samples(), 3);
    }

    #[test]
    fn popularity_band_filters_documents() {
        let t = trace_with_gaps(&[2, 2, 2]); // doc 0 has 4 references
        assert_eq!(gap_histogram(&t, None, 5, u64::MAX).samples(), 0);
        assert_eq!(gap_histogram(&t, None, 4, 4).samples(), 3);
    }

    #[test]
    fn beta_recovers_power_law_gaps() {
        // Draw gaps from P(n) ∝ n^-1.5 over 1..2047 via inverse CDF.
        let target = 1.5;
        let max_gap = 2047u64;
        let norm: f64 = (1..=max_gap).map(|n| (n as f64).powf(-target)).sum();
        let mut gaps = Vec::new();
        for i in 0..30_000u64 {
            let u = (i as f64 + 0.5) / 30_000.0;
            let mut acc = 0.0;
            let mut chosen = max_gap;
            for n in 1..=max_gap {
                acc += (n as f64).powf(-target) / norm;
                if acc >= u {
                    chosen = n;
                    break;
                }
            }
            gaps.push(chosen);
        }
        let mut hist = GapHistogram::new();
        for g in gaps {
            hist.record(g);
        }
        let beta = hist.beta().unwrap();
        assert!((beta - target).abs() < 0.25, "beta = {beta}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = GapHistogram::new();
        a.record(1);
        let mut b = GapHistogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.samples(), 2);
        assert!(a.beta_fit().is_some());
    }

    #[test]
    fn single_bucket_has_no_beta() {
        let mut h = GapHistogram::new();
        for _ in 0..50 {
            h.record(3);
        }
        assert_eq!(h.beta(), None);
    }

    #[test]
    fn type_filter_excludes_other_types() {
        let t: Trace = vec![
            req(0, DocumentType::Html),
            req(1, DocumentType::Image),
            req(1, DocumentType::Image),
            req(0, DocumentType::Html),
        ]
        .into();
        let html = gap_histogram(&t, Some(DocumentType::Html), 2, u64::MAX);
        assert_eq!(html.samples(), 1);
        let image = gap_histogram(&t, Some(DocumentType::Image), 2, u64::MAX);
        assert_eq!(image.samples(), 1);
    }

    #[test]
    fn beta_of_trivial_trace_is_none() {
        let t: Trace = vec![req(0, DocumentType::Html)].into();
        assert_eq!(beta(&t, None), None);
    }
}
