//! Descriptive statistics: mean, median, quantiles, coefficient of
//! variation.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample, as reported in Tables 4 and 5 of the
/// paper (mean, median and coefficient of variation of document and
/// transfer sizes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// Returns the all-zero summary for an empty sample. Non-finite
    /// samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN or infinite.
    ///
    /// ```
    /// use webcache_stats::Summary;
    /// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.median, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let n = count as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Summary {
            count,
            mean,
            median: quantile_sorted(&sorted, 0.5),
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
        }
    }

    /// Coefficient of variation: `std_dev / mean` (0 when the mean is 0).
    ///
    /// High CoV is the hallmark of web workloads; the paper reports CoV of
    /// document and transfer sizes per document type.
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice, with linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    if data.len() == 1 {
        return data[0];
    }
    let pos = q * (data.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    data[lo] * (1.0 - frac) + data[hi] * frac
}

/// Median of an unsorted slice (convenience wrapper).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn median(data: &[f64]) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_samples(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [0.0, 10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&data, 0.0), 0.0);
        assert_eq!(quantile_sorted(&data, 1.0), 40.0);
        assert_eq!(quantile_sorted(&data, 0.25), 10.0);
        assert_eq!(quantile_sorted(&data, 0.125), 5.0);
    }

    #[test]
    fn cov_detects_high_variability() {
        // Heavy-tailed-ish sample: CoV > 1.
        let s = Summary::from_samples(&[1.0, 1.0, 1.0, 1.0, 100.0]);
        assert!(s.cov() > 1.0, "CoV = {}", s.cov());
        assert_eq!(s.max, 100.0);
        assert_eq!(s.min, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile_sorted(&[], 0.5);
    }
}
