//! # webcache-stats
//!
//! Workload characterization for web proxy traces, computing every
//! quantity reported in Section 2 of Lindemann & Waldhorst (DSN 2002):
//!
//! * trace-level properties — distinct documents, overall size, total
//!   requests, requested data (**Table 1**);
//! * the per-document-type breakdown of documents, sizes, requests and
//!   bytes (**Tables 2 and 3**);
//! * per-type document/transfer size statistics (mean, median, coefficient
//!   of variation), the popularity slope **α** and the temporal-correlation
//!   slope **β** (**Tables 4 and 5**).
//!
//! The crate also provides the generic machinery these measurements rest
//! on: descriptive statistics ([`descriptive`]), (weighted) log-log least
//! squares ([`regression`]), Zipf-slope estimation ([`popularity`]),
//! inter-reference gap analysis ([`correlation`]) and plain-text table
//! rendering ([`table`]).
//!
//! ```
//! use webcache_stats::TraceCharacterization;
//! use webcache_trace::{Trace, Request, Timestamp, DocId, DocumentType, ByteSize};
//!
//! let trace: Trace = (0..100u64)
//!     .map(|i| Request::new(
//!         Timestamp::from_millis(i),
//!         DocId::new(i % 10),
//!         DocumentType::Html,
//!         ByteSize::new(1000),
//!     ))
//!     .collect();
//! let ch = TraceCharacterization::measure(&trace);
//! assert_eq!(ch.properties.total_requests, 100);
//! assert_eq!(ch.properties.distinct_documents, 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod characterize;
pub mod concentration;
pub mod correlation;
pub mod descriptive;
pub mod popularity;
pub mod regression;
pub mod stack;
pub mod table;

pub use characterize::{TraceCharacterization, TraceProperties, TypeBreakdown, TypeStatistics};
pub use concentration::Concentration;
pub use correlation::GapHistogram;
pub use descriptive::Summary;
pub use regression::LineFit;
pub use stack::StackDistances;
pub use table::Table;
