//! Popularity-slope (α) estimation.
//!
//! The number of requests `N` to a document is proportional to its
//! popularity rank ρ to the power −α: `N ∝ ρ^−α` (a Zipf-like law). The
//! paper determines α as the slope of the log/log plot of reference count
//! against popularity rank; large α means a few extremely popular
//! documents (images), small α means requests spread evenly (multi media,
//! application).
//!
//! Fitting every `(rank, count)` point directly over-weights the huge
//! singleton tail, so [`alpha_from_counts`] averages counts within
//! geometrically spaced rank bins before fitting — the standard remedy for
//! rank-frequency regression bias.

use std::collections::HashMap;

use webcache_trace::{DocumentType, Trace};

use crate::regression::{fit_line_weighted, LineFit};

/// Estimates α from per-document request counts.
///
/// Returns `None` when fewer than two distinct documents are present.
/// The returned α is non-negative (the magnitude of the fitted log-log
/// slope).
///
/// ```
/// use webcache_stats::popularity::alpha_from_counts;
///
/// // counts ∝ rank^-1 over 1000 documents.
/// let counts: Vec<u64> = (1..=1000u64).map(|r| (100_000 / r).max(1)).collect();
/// let alpha = alpha_from_counts(&counts).unwrap();
/// assert!((alpha - 1.0).abs() < 0.15, "alpha = {alpha}");
/// ```
pub fn alpha_from_counts(counts: &[u64]) -> Option<f64> {
    alpha_fit_from_counts(counts).map(|fit| (-fit.slope).max(0.0))
}

/// Like [`alpha_from_counts`] but exposes the full fit (slope sign,
/// intercept, R²) for diagnostic plots.
pub fn alpha_fit_from_counts(counts: &[u64]) -> Option<LineFit> {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    if sorted.len() < 2 {
        return None;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a));

    // Geometric rank bins: [1,2), [2,4), [4,8), ... Average the counts in
    // each bin and weight the point by the bin's population.
    let mut points = Vec::new();
    let mut lo = 0usize; // 0-based start rank of the current bin
    while lo < sorted.len() {
        let hi = ((lo + 1) * 2 - 1).min(sorted.len()); // exclusive
        let slice = &sorted[lo..hi];
        let mean_count = slice.iter().sum::<u64>() as f64 / slice.len() as f64;
        // Geometric mean of the bin's rank range as the representative x.
        let rank_lo = (lo + 1) as f64;
        let rank_hi = hi as f64;
        let rank = (rank_lo * rank_hi).sqrt();
        if mean_count > 0.0 {
            points.push((rank.ln(), mean_count.ln(), slice.len() as f64));
        }
        lo = hi;
    }
    fit_line_weighted(&points)
}

/// Per-document request counts of a trace, optionally restricted to one
/// document type.
pub fn request_counts(trace: &Trace, doc_type: Option<DocumentType>) -> Vec<u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in trace {
        if doc_type.is_none_or(|ty| ty == r.doc_type) {
            *counts.entry(r.doc.as_u64()).or_insert(0) += 1;
        }
    }
    counts.into_values().collect()
}

/// Estimates α for a whole trace or a single document type within it.
///
/// Returns `None` when the (filtered) trace references fewer than two
/// distinct documents.
pub fn alpha(trace: &Trace, doc_type: Option<DocumentType>) -> Option<f64> {
    alpha_from_counts(&request_counts(trace, doc_type))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{ByteSize, DocId, Request, Timestamp};

    fn zipf_counts(n: u64, alpha: f64, scale: f64) -> Vec<u64> {
        (1..=n)
            .map(|r| ((scale * (r as f64).powf(-alpha)).round() as u64).max(1))
            .collect()
    }

    #[test]
    fn recovers_steep_slope() {
        let counts = zipf_counts(2000, 1.4, 1e6);
        let a = alpha_from_counts(&counts).unwrap();
        assert!((a - 1.4).abs() < 0.2, "alpha = {a}");
    }

    #[test]
    fn recovers_shallow_slope() {
        let counts = zipf_counts(2000, 0.6, 1e5);
        let a = alpha_from_counts(&counts).unwrap();
        assert!((a - 0.6).abs() < 0.2, "alpha = {a}");
    }

    #[test]
    fn uniform_popularity_gives_near_zero_alpha() {
        let counts = vec![50u64; 500];
        let a = alpha_from_counts(&counts).unwrap();
        assert!(a < 0.05, "alpha = {a}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(alpha_from_counts(&[]), None);
        assert_eq!(alpha_from_counts(&[7]), None);
        assert_eq!(
            alpha_from_counts(&[0, 0, 0]),
            None,
            "zero counts are dropped"
        );
    }

    #[test]
    fn per_type_counts_filter() {
        let trace: Trace = vec![
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Image,
                ByteSize::new(1),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Image,
                ByteSize::new(1),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(2),
                DocumentType::Html,
                ByteSize::new(1),
            ),
        ]
        .into();
        let image_counts = request_counts(&trace, Some(DocumentType::Image));
        assert_eq!(image_counts, vec![2]);
        let mut all = request_counts(&trace, None);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn order_of_counts_does_not_matter() {
        let mut counts = zipf_counts(1000, 1.0, 1e5);
        let a1 = alpha_from_counts(&counts).unwrap();
        counts.reverse();
        let a2 = alpha_from_counts(&counts).unwrap();
        assert_eq!(a1, a2);
    }
}
