//! Least-squares line fitting, the workhorse behind the α and β slope
//! measurements (both are straight-line fits on log/log scales).

use serde::{Deserialize, Serialize};

/// The result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R², in `[0, 1]`.
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// Returns `None` with fewer than two points or when all `x` coincide.
///
/// ```
/// use webcache_stats::regression::fit_line;
/// let fit = fit_line(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn fit_line(points: &[(f64, f64)]) -> Option<LineFit> {
    let weighted: Vec<(f64, f64, f64)> = points.iter().map(|&(x, y)| (x, y, 1.0)).collect();
    fit_line_weighted(&weighted)
}

/// Weighted least squares over `(x, y, w)` triples with weights `w ≥ 0`.
///
/// Returns `None` with fewer than two positively weighted points or when
/// all weighted `x` coincide.
pub fn fit_line_weighted(points: &[(f64, f64, f64)]) -> Option<LineFit> {
    let points: Vec<_> = points
        .iter()
        .copied()
        .filter(|&(_, _, w)| w > 0.0)
        .collect();
    if points.len() < 2 {
        return None;
    }
    let wsum: f64 = points.iter().map(|&(_, _, w)| w).sum();
    let mx = points.iter().map(|&(x, _, w)| w * x).sum::<f64>() / wsum;
    let my = points.iter().map(|&(_, y, w)| w * y).sum::<f64>() / wsum;
    let sxy: f64 = points
        .iter()
        .map(|&(x, y, w)| w * (x - mx) * (y - my))
        .sum();
    let sxx: f64 = points.iter().map(|&(x, _, w)| w * (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y, w)| w * (y - (slope * x + intercept)).powi(2))
        .sum();
    let ss_tot: f64 = points.iter().map(|&(_, y, w)| w * (y - my).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits a power law `y ≈ C·x^slope` by regressing on log-log scale.
///
/// Pairs with non-positive `x` or `y` are skipped (they have no
/// logarithm). Returns `None` when fewer than two usable points remain.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<LineFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    fit_line(&logs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let fit = fit_line(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!(fit.intercept.abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let fit = fit_line(&[(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)]).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.slope > 0.0);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(fit_line(&[]).is_none());
        assert!(fit_line(&[(1.0, 1.0)]).is_none());
        assert!(
            fit_line(&[(1.0, 1.0), (1.0, 2.0)]).is_none(),
            "vertical line"
        );
    }

    #[test]
    fn weights_shift_the_fit() {
        // Two clusters; weighting the second cluster heavily pulls the
        // slope towards its trend.
        let flat = [(0.0, 0.0, 1.0), (1.0, 0.0, 1.0)];
        let steep = [(0.0, 0.0, 1.0), (1.0, 10.0, 100.0)];
        let combined: Vec<_> = flat.iter().chain(steep.iter()).copied().collect();
        let fit = fit_line_weighted(&combined).unwrap();
        assert!(fit.slope > 5.0, "slope = {}", fit.slope);
    }

    #[test]
    fn zero_weight_points_are_ignored() {
        let fit = fit_line_weighted(&[
            (0.0, 0.0, 1.0),
            (1.0, 1.0, 1.0),
            (2.0, -50.0, 0.0), // outlier with zero weight
        ])
        .unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovery() {
        // y = 3 x^-1.7
        let points: Vec<(f64, f64)> = (1..100)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x.powf(-1.7))
            })
            .collect();
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.slope + 1.7).abs() < 1e-9);
        assert!((fit.intercept - 3.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn power_law_skips_nonpositive() {
        let fit = fit_power_law(&[(0.0, 1.0), (1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]).unwrap();
        assert!(fit.slope < 0.0);
    }
}
