//! LRU stack-distance analysis.
//!
//! The *stack distance* of a reference is the number of distinct
//! documents touched since the previous reference to the same document —
//! equivalently, the document's depth in an LRU stack at the moment of
//! the reference. The distribution of stack distances is the classic
//! quantitative handle on temporal locality (the property Sections 2 and
//! 4 of the paper reason about via β): a reference with stack distance
//! `d` hits in *any* LRU cache holding at least `d` documents, so the
//! cumulative distribution *is* LRU's hit-rate-vs-capacity curve in the
//! uniform-size case.
//!
//! The computation uses the standard Fenwick-tree formulation: positions
//! of most-recent references are marked in a bit-indexed tree, and the
//! distance is the count of marked positions after the document's last
//! position — `O(log n)` per reference, `O(n log n)` per trace.

use serde::{Deserialize, Serialize};

use std::collections::HashMap;

use webcache_trace::{DocumentType, Trace};

/// A Fenwick (binary indexed) tree over request positions.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based).
    fn prefix_sum(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Total marked positions.
    fn total(&self) -> u32 {
        if self.tree.len() > 1 {
            self.prefix_sum(self.tree.len() - 2)
        } else {
            0
        }
    }
}

/// The stack-distance profile of a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackDistances {
    /// `histogram[d]` counts re-references at stack distance `d`
    /// (`d ≥ 1`; index 0 is unused).
    histogram: Vec<u64>,
    /// Cold (first-reference) accesses, which have no stack distance.
    cold: u64,
    /// Total references analyzed.
    total: u64,
}

impl StackDistances {
    /// Computes the stack-distance histogram of `trace`, optionally
    /// restricted to references to one document type (distances still
    /// count intervening distinct documents of *that type's* substream,
    /// matching a per-type cache).
    pub fn measure(trace: &Trace, doc_type: Option<DocumentType>) -> Self {
        // Collect the (possibly filtered) reference stream.
        let refs: Vec<u64> = trace
            .iter()
            .filter(|r| doc_type.is_none_or(|ty| ty == r.doc_type))
            .map(|r| r.doc.as_u64())
            .collect();

        let n = refs.len();
        let mut fenwick = Fenwick::new(n);
        let mut last_pos: HashMap<u64, usize> = HashMap::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;

        for (pos, &doc) in refs.iter().enumerate() {
            match last_pos.insert(doc, pos) {
                None => {
                    cold += 1;
                }
                Some(prev) => {
                    // Distinct documents touched strictly after `prev`:
                    // marked most-recent positions in (prev, pos).
                    let after_prev = fenwick.total() - fenwick.prefix_sum(prev);
                    let distance = after_prev as usize + 1; // include the doc itself
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    fenwick.add(prev, -1);
                }
            }
            fenwick.add(pos, 1);
        }

        StackDistances {
            histogram,
            cold,
            total: n as u64,
        }
    }

    /// Total references analyzed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// First references (compulsory misses).
    pub fn cold_references(&self) -> u64 {
        self.cold
    }

    /// Number of re-references at exactly stack distance `d`.
    pub fn at(&self, d: usize) -> u64 {
        self.histogram.get(d).copied().unwrap_or(0)
    }

    /// The largest observed stack distance.
    pub fn max_distance(&self) -> usize {
        self.histogram.len().saturating_sub(1)
    }

    /// Predicted LRU hit rate for a cache holding `capacity_docs`
    /// documents (uniform-size idealization): the fraction of references
    /// with stack distance ≤ capacity.
    pub fn lru_hit_rate(&self, capacity_docs: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(capacity_docs + 1).sum();
        hits as f64 / self.total as f64
    }

    /// Mean stack distance over re-references, `None` when the trace has
    /// no re-references.
    pub fn mean_distance(&self) -> Option<f64> {
        let rerefs: u64 = self.histogram.iter().sum();
        if rerefs == 0 {
            return None;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(weighted as f64 / rerefs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcache_trace::{ByteSize, DocId, Request, Timestamp};

    fn trace(docs: &[u64]) -> Trace {
        docs.iter()
            .enumerate()
            .map(|(i, &d)| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(d),
                    DocumentType::Html,
                    ByteSize::new(1),
                )
            })
            .collect()
    }

    #[test]
    fn textbook_example() {
        // Stream: a b c a — `a`'s re-reference sees {b, c, a} -> depth 3.
        let s = StackDistances::measure(&trace(&[0, 1, 2, 0]), None);
        assert_eq!(s.cold_references(), 3);
        assert_eq!(s.at(3), 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn immediate_rereference_is_distance_one() {
        let s = StackDistances::measure(&trace(&[7, 7, 7]), None);
        assert_eq!(s.cold_references(), 1);
        assert_eq!(s.at(1), 2);
        assert_eq!(s.mean_distance(), Some(1.0));
    }

    #[test]
    fn distance_counts_distinct_not_raw_requests() {
        // a b b b a: between the two a's there are 3 requests but only
        // one distinct document -> distance 2.
        let s = StackDistances::measure(&trace(&[0, 1, 1, 1, 0]), None);
        assert_eq!(s.at(2), 1);
        assert_eq!(s.at(1), 2, "the two immediate b re-references");
    }

    #[test]
    fn lru_hit_rate_matches_cdf() {
        // Cyclic stream over 3 docs: every re-reference at distance 3.
        let s = StackDistances::measure(&trace(&[0, 1, 2, 0, 1, 2, 0, 1, 2]), None);
        assert_eq!(s.lru_hit_rate(2), 0.0, "cache of 2 never hits");
        assert!((s.lru_hit_rate(3) - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(s.max_distance(), 3);
    }

    /// Differential test against the quadratic reference implementation.
    #[test]
    fn matches_naive_implementation() {
        let mut state = 777u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 30
        };
        let stream: Vec<u64> = (0..600).map(|_| next()).collect();
        let fast = StackDistances::measure(&trace(&stream), None);

        // Naive: walk an explicit LRU stack.
        let mut stack: Vec<u64> = Vec::new();
        let mut naive: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for &d in &stream {
            match stack.iter().position(|&x| x == d) {
                None => cold += 1,
                Some(pos) => {
                    let dist = pos + 1;
                    if naive.len() <= dist {
                        naive.resize(dist + 1, 0);
                    }
                    naive[dist] += 1;
                    stack.remove(pos);
                }
            }
            stack.insert(0, d);
        }
        assert_eq!(fast.cold_references(), cold);
        for d in 0..naive.len().max(fast.max_distance() + 1) {
            assert_eq!(fast.at(d), naive.get(d).copied().unwrap_or(0), "d = {d}");
        }
    }

    #[test]
    fn per_type_substream() {
        // Image refs interleaved with html noise; image distances are
        // measured within the image substream only.
        let reqs: Vec<Request> = vec![
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Image,
                ByteSize::new(1),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(2),
                DocumentType::Html,
                ByteSize::new(1),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(3),
                DocumentType::Html,
                ByteSize::new(1),
            ),
            Request::new(
                Timestamp::ZERO,
                DocId::new(1),
                DocumentType::Image,
                ByteSize::new(1),
            ),
        ];
        let s = StackDistances::measure(&reqs.into(), Some(DocumentType::Image));
        assert_eq!(s.total(), 2);
        assert_eq!(s.at(1), 1, "no other images intervened");
    }

    #[test]
    fn empty_and_cold_only() {
        let s = StackDistances::measure(&Trace::new(), None);
        assert_eq!(s.total(), 0);
        assert_eq!(s.lru_hit_rate(100), 0.0);
        assert_eq!(s.mean_distance(), None);
        let s = StackDistances::measure(&trace(&[1, 2, 3]), None);
        assert_eq!(s.cold_references(), 3);
        assert_eq!(s.mean_distance(), None);
    }
}
