//! Plain-text and CSV table rendering for reports.

use std::fmt;

/// A simple column-aligned table.
///
/// ```
/// use webcache_stats::Table;
///
/// let mut t = Table::new(vec!["Policy".into(), "Hit rate".into()]);
/// t.push_row(vec!["LRU".into(), "0.31".into()]);
/// t.push_row(vec!["GD*(1)".into(), "0.42".into()]);
/// let text = t.render();
/// assert!(text.contains("LRU"));
/// assert!(text.lines().count() >= 4); // header + separator + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            title: None,
            headers,
            rows: Vec::new(),
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row's width differs from the header's.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text (first column
    /// left-aligned, the rest right-aligned).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let format_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            // Trailing spaces from the padding of the last column are noise.
            line.truncate(line.trim_end().len());
            line
        };
        out.push_str(&format_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a GitHub-flavoured Markdown table (title as
    /// a bold paragraph above).
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(&format!("**{}**\n\n", escape(title)));
        }
        let row_line = |cells: &[String]| {
            let inner: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            format!("| {} |\n", inner.join(" | "))
        };
        out.push_str(&row_line(&self.headers));
        let seps: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i == 0 {
                    ":--".to_owned()
                } else {
                    "--:".to_owned()
                }
            })
            .collect();
        out.push_str(&format!("| {} |\n", seps.join(" | ")));
        for row in &self.rows {
            out.push_str(&row_line(row));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with three decimal places, the precision used
/// throughout the paper's tables.
pub fn fmt_f64(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats an optional float, rendering `None` as `-`.
pub fn fmt_opt(value: Option<f64>) -> String {
    value.map(fmt_f64).unwrap_or_else(|| "-".to_owned())
}

/// Formats a fraction as a percentage with two decimals.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]).with_title("Demo");
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "20".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // Right-aligned second column: "1" and "20" end at the same offset.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["name".into(), "v|x".into()]).with_title("T");
        t.push_row(vec!["a".into(), "1".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("**T**\n\n"));
        assert!(md.contains("| name | v\\|x |"), "{md}");
        assert!(md.contains("| :-- | --: |"));
        assert!(md.contains("| a | 1 |"));
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt_opt(Some(0.5)), "0.500");
        assert_eq!(fmt_pct(0.1234), "12.34");
    }
}
