//! Property tests for the statistics substrate: descriptive invariants,
//! regression laws and estimator recovery.

use proptest::prelude::*;

use webcache_stats::correlation::GapHistogram;
use webcache_stats::descriptive::{median, quantile_sorted};
use webcache_stats::popularity::alpha_from_counts;
use webcache_stats::regression::{fit_line, fit_power_law};
use webcache_stats::Summary;

proptest! {
    /// Summary statistics respect their defining inequalities.
    #[test]
    fn summary_invariants(samples in prop::collection::vec(0.0f64..1e9, 1..500)) {
        let s = Summary::from_samples(&samples);
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.cov() >= 0.0);
    }

    /// Shifting all samples shifts mean/median and leaves std_dev alone.
    #[test]
    fn summary_shift_equivariance(
        samples in prop::collection::vec(0.0f64..1e6, 2..100),
        shift in 0.0f64..1e6,
    ) {
        let a = Summary::from_samples(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let b = Summary::from_samples(&shifted);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6 * (1.0 + a.mean + shift));
        prop_assert!((b.median - a.median - shift).abs() < 1e-6 * (1.0 + a.median + shift));
        prop_assert!((b.std_dev - a.std_dev).abs() < 1e-6 * (1.0 + a.std_dev));
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(
        mut samples in prop::collection::vec(0.0f64..1e9, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        samples.sort_by(|a, b| a.total_cmp(b));
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = quantile_sorted(&samples, lo);
        let vhi = quantile_sorted(&samples, hi);
        prop_assert!(vlo <= vhi);
        prop_assert!(samples[0] <= vlo && vhi <= samples[samples.len() - 1]);
    }

    /// The median of any sample lies between its extremes.
    #[test]
    fn median_bounds(samples in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let m = median(&samples);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min <= m && m <= max);
    }

    /// fit_line recovers exact lines (through noise-free points).
    #[test]
    fn fit_line_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -1000.0f64..1000.0,
        xs in prop::collection::btree_set(-1000i32..1000, 2..50),
    ) {
        let points: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| (x as f64, slope * x as f64 + intercept))
            .collect();
        let fit = fit_line(&points).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    /// fit_power_law recovers exponents of exact power laws.
    #[test]
    fn power_law_recovery(exponent in -3.0f64..-0.1, scale in 0.1f64..100.0) {
        let points: Vec<(f64, f64)> = (1..200)
            .map(|i| {
                let x = i as f64;
                (x, scale * x.powf(exponent))
            })
            .collect();
        let fit = fit_power_law(&points).unwrap();
        prop_assert!((fit.slope - exponent).abs() < 1e-6);
    }

    /// The α estimator recovers synthetic Zipf slopes within tolerance
    /// and is permutation-invariant.
    #[test]
    fn alpha_estimator_recovers_zipf(target in 0.4f64..1.4, n in 500usize..3000) {
        let counts: Vec<u64> = (1..=n)
            .map(|r| ((1e6 * (r as f64).powf(-target)).round() as u64).max(1))
            .collect();
        let alpha = alpha_from_counts(&counts).unwrap();
        prop_assert!(
            (alpha - target).abs() < 0.25,
            "target {target}, estimated {alpha}"
        );
    }

    /// The β estimator is scale-free: multiplying all gaps by a constant
    /// leaves the estimate (approximately) unchanged.
    #[test]
    fn beta_estimator_is_scale_free(
        gaps in prop::collection::vec(1u64..4096, 200..2000),
        factor in prop::sample::select(vec![2u64, 4, 8]),
    ) {
        let mut a = GapHistogram::new();
        let mut b = GapHistogram::new();
        for &g in &gaps {
            a.record(g);
            b.record(g * factor);
        }
        // Scaling can merge everything into fewer buckets, in which case
        // one side has no estimate; that's fine.
        if let (Some(ba), Some(bb)) = (a.beta(), b.beta()) {
            prop_assert!(
                (ba - bb).abs() < 0.4,
                "beta changed under scaling: {ba} vs {bb}"
            );
        }
    }

    /// Histogram merge is equivalent to recording the union.
    #[test]
    fn histogram_merge_is_union(
        xs in prop::collection::vec(1u64..100_000, 1..200),
        ys in prop::collection::vec(1u64..100_000, 1..200),
    ) {
        let mut a = GapHistogram::new();
        for &x in &xs { a.record(x); }
        let mut b = GapHistogram::new();
        for &y in &ys { b.record(y); }
        a.merge(&b);
        let mut both = GapHistogram::new();
        for &v in xs.iter().chain(ys.iter()) { both.record(v); }
        prop_assert_eq!(a, both);
    }
}

mod locality_props {
    use proptest::prelude::*;
    use webcache_stats::concentration::Concentration;
    use webcache_stats::StackDistances;
    use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

    fn trace_of(docs: &[u64]) -> Trace {
        docs.iter()
            .enumerate()
            .map(|(i, &d)| {
                Request::new(
                    Timestamp::from_millis(i as u64),
                    DocId::new(d),
                    DocumentType::Html,
                    ByteSize::new(1),
                )
            })
            .collect()
    }

    proptest! {
        /// The concentration curve is monotone, bounded and anchored at
        /// (0, 0) and (1, 1) for any stream.
        #[test]
        fn concentration_curve_laws(docs in prop::collection::vec(0u64..50, 1..400)) {
            let c = Concentration::measure(&trace_of(&docs), None);
            let curve = c.curve(10);
            prop_assert_eq!(curve[0], (0.0, 0.0));
            let (x_last, y_last) = curve[curve.len() - 1];
            prop_assert_eq!(x_last, 1.0);
            prop_assert!((y_last - 1.0).abs() < 1e-12);
            for w in curve.windows(2) {
                prop_assert!(w[1].1 >= w[0].1 - 1e-12);
            }
        }

        /// The hit-rate ceiling equals 1 - distinct/requests, and the
        /// one-timer request share never exceeds the miss floor.
        #[test]
        fn ceiling_and_one_timers(docs in prop::collection::vec(0u64..50, 1..400)) {
            let t = trace_of(&docs);
            let c = Concentration::measure(&t, None);
            let expected = 1.0 - t.distinct_documents() as f64 / t.len() as f64;
            prop_assert!((c.hit_rate_ceiling() - expected).abs() < 1e-12);
            prop_assert!(c.one_timer_request_share() <= 1.0 - c.hit_rate_ceiling() + 1e-12);
        }

        /// Stack distances: cold + re-references = total, the LRU
        /// hit-rate curve is monotone in capacity, and the infinite-
        /// capacity hit rate equals the concentration ceiling.
        #[test]
        fn stack_distance_laws(docs in prop::collection::vec(0u64..40, 1..400)) {
            let t = trace_of(&docs);
            let s = StackDistances::measure(&t, None);
            let rerefs: u64 = (0..=s.max_distance()).map(|d| s.at(d)).sum();
            prop_assert_eq!(s.cold_references() + rerefs, s.total());
            let mut last = 0.0;
            for cap in [0usize, 1, 2, 4, 8, 16, 64, 1024] {
                let hr = s.lru_hit_rate(cap);
                prop_assert!(hr >= last - 1e-12);
                last = hr;
            }
            let ceiling = Concentration::measure(&t, None).hit_rate_ceiling();
            prop_assert!((s.lru_hit_rate(100_000) - ceiling).abs() < 1e-12);
        }

        /// The fast Fenwick implementation agrees with an explicit LRU
        /// stack on arbitrary streams.
        #[test]
        fn stack_distance_matches_naive(docs in prop::collection::vec(0u64..25, 1..200)) {
            let fast = StackDistances::measure(&trace_of(&docs), None);
            let mut stack: Vec<u64> = Vec::new();
            let mut cold = 0u64;
            let mut hist: Vec<u64> = Vec::new();
            for &d in &docs {
                match stack.iter().position(|&x| x == d) {
                    None => cold += 1,
                    Some(pos) => {
                        let dist = pos + 1;
                        if hist.len() <= dist {
                            hist.resize(dist + 1, 0);
                        }
                        hist[dist] += 1;
                        stack.remove(pos);
                    }
                }
                stack.insert(0, d);
            }
            prop_assert_eq!(fast.cold_references(), cold);
            for d in 0..hist.len().max(fast.max_distance() + 1) {
                prop_assert_eq!(fast.at(d), hist.get(d).copied().unwrap_or(0));
            }
        }
    }
}
