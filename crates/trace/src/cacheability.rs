//! URL cacheability heuristics.
//!
//! Preprocessing excludes uncacheable documents "by commonly known
//! heuristics, e.g. by looking for string `cgi` or `?` in the requested
//! URL" (paper, Section 2). These heuristics mark dynamically generated
//! content whose responses must not be served from a shared proxy cache.

/// Returns `true` when `url` looks dynamically generated and therefore
/// uncacheable.
///
/// The heuristics are those used by the paper and the surrounding
/// literature:
///
/// * a query string (`?` anywhere in the URL),
/// * the string `cgi` in the path (covers `cgi-bin`, `*.cgi`, ...),
/// * common server-side program extensions observed in 2001-era traces.
///
/// ```
/// use webcache_trace::cacheability::is_dynamic_url;
///
/// assert!(is_dynamic_url("http://e.com/cgi-bin/search"));
/// assert!(is_dynamic_url("http://e.com/find?q=x"));
/// assert!(!is_dynamic_url("http://e.com/logo.gif"));
/// ```
pub fn is_dynamic_url(url: &str) -> bool {
    if url.contains('?') {
        return true;
    }
    let lower = url.to_ascii_lowercase();
    if lower.contains("cgi") {
        return true;
    }
    // Path-only view for the extension checks (no query string possible at
    // this point, but strip fragments for robustness).
    let path = lower.split('#').next().unwrap_or(&lower);
    const DYNAMIC_SUFFIXES: [&str; 4] = [".cgi", ".pl", ".cfm", ".dll"];
    DYNAMIC_SUFFIXES.iter().any(|s| path.ends_with(s))
}

/// Returns `true` when a request for `url` may be stored by a shared cache.
///
/// This is the complement of [`is_dynamic_url`]; it exists so call sites
/// read positively in filter chains.
pub fn is_cacheable_url(url: &str) -> bool {
    !is_dynamic_url(url)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_are_dynamic() {
        assert!(is_dynamic_url("http://a.de/x.html?id=1"));
        assert!(is_dynamic_url("http://a.de/?"));
    }

    #[test]
    fn cgi_anywhere_is_dynamic() {
        assert!(is_dynamic_url("http://a.de/cgi-bin/prog"));
        assert!(is_dynamic_url("http://a.de/myCGI/prog"));
        assert!(is_dynamic_url("http://a.de/prog.cgi"));
    }

    #[test]
    fn dynamic_extensions() {
        assert!(is_dynamic_url("http://a.de/script.pl"));
        assert!(is_dynamic_url("http://a.de/page.cfm"));
        assert!(is_dynamic_url("http://a.de/isapi.dll"));
    }

    #[test]
    fn static_documents_are_cacheable() {
        for url in [
            "http://a.de/index.html",
            "http://a.de/img/logo.gif",
            "http://a.de/pub/paper.pdf",
            "http://a.de/video.mpg",
            "http://a.de/dir/",
        ] {
            assert!(is_cacheable_url(url), "{url} should be cacheable");
        }
    }

    #[test]
    fn case_insensitive_cgi() {
        assert!(is_dynamic_url("http://a.de/CGI-BIN/x"));
    }
}
