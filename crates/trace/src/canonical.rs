//! URL canonicalization.
//!
//! Proxy logs reach the preprocessor with URL variants that denote the
//! same document — different host casing, explicit default ports,
//! fragments, trailing `index.html` — which would otherwise split one
//! document's request chain into several [`DocId`](crate::DocId)s and
//! understate every hit rate. `canonicalize` normalizes the variants
//! the 2001-era trace literature normalized.

/// Canonicalizes a URL for document identity:
///
/// * scheme and host are lowercased (paths stay case-sensitive),
/// * explicit default ports (`:80` for http, `:443` for https) drop,
/// * fragments (`#...`) drop — they never reach the server,
/// * a trailing `index.html`/`index.htm` collapses to the directory,
/// * an empty path becomes `/`.
///
/// Query strings are preserved (preprocessing filters them out as
/// uncacheable anyway). Inputs without `://` are returned with only
/// fragment removal — relative log entries are kept intact.
///
/// ```
/// use webcache_trace::canonical::canonicalize;
///
/// assert_eq!(
///     canonicalize("HTTP://Example.DE:80/pics/Logo.gif#top"),
///     "http://example.de/pics/Logo.gif"
/// );
/// assert_eq!(
///     canonicalize("http://example.de/dir/index.html"),
///     "http://example.de/dir/"
/// );
/// ```
pub fn canonicalize(url: &str) -> String {
    // Drop the fragment first; it applies to every form.
    let url = url.split('#').next().unwrap_or(url);

    let Some((scheme, rest)) = url.split_once("://") else {
        return url.to_owned();
    };
    let scheme = scheme.to_ascii_lowercase();

    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, ""),
    };
    let authority = authority.to_ascii_lowercase();
    let authority = match (scheme.as_str(), authority.rsplit_once(':')) {
        ("http", Some((host, "80"))) | ("https", Some((host, "443"))) => host.to_owned(),
        _ => authority,
    };

    let path = if path.is_empty() { "/" } else { path };
    // Only the *path* portion may end in index.html; don't touch queries.
    let (path_only, query) = match path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path, None),
    };
    let path_only = path_only
        .strip_suffix("index.html")
        .or_else(|| path_only.strip_suffix("index.htm"))
        .filter(|p| p.ends_with('/'))
        .unwrap_or(path_only);

    match query {
        Some(q) => format!("{scheme}://{authority}{path_only}?{q}"),
        None => format!("{scheme}://{authority}{path_only}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_and_scheme_lowercase_path_preserved() {
        assert_eq!(
            canonicalize("HTTP://WWW.Example.DE/Pics/Logo.GIF"),
            "http://www.example.de/Pics/Logo.GIF"
        );
    }

    #[test]
    fn default_ports_drop_nondefault_stay() {
        assert_eq!(canonicalize("http://e.de:80/x"), "http://e.de/x");
        assert_eq!(canonicalize("https://e.de:443/x"), "https://e.de/x");
        assert_eq!(canonicalize("http://e.de:8080/x"), "http://e.de:8080/x");
        assert_eq!(canonicalize("https://e.de:80/x"), "https://e.de:80/x");
    }

    #[test]
    fn fragments_drop() {
        assert_eq!(
            canonicalize("http://e.de/a.html#sec2"),
            "http://e.de/a.html"
        );
        assert_eq!(canonicalize("relative/path#x"), "relative/path");
    }

    #[test]
    fn index_html_collapses_to_directory() {
        assert_eq!(canonicalize("http://e.de/index.html"), "http://e.de/");
        assert_eq!(canonicalize("http://e.de/d/index.htm"), "http://e.de/d/");
        // Not a directory index: a file merely *named* like one.
        assert_eq!(
            canonicalize("http://e.de/nonindex.html"),
            "http://e.de/nonindex.html"
        );
    }

    #[test]
    fn empty_path_becomes_root() {
        assert_eq!(canonicalize("http://e.de"), "http://e.de/");
        assert_eq!(canonicalize("http://E.DE:80"), "http://e.de/");
    }

    #[test]
    fn queries_survive() {
        assert_eq!(
            canonicalize("http://E.de/search?Q=Mixed"),
            "http://e.de/search?Q=Mixed"
        );
        assert_eq!(
            canonicalize("http://e.de/dir/index.html?x=1"),
            "http://e.de/dir/?x=1"
        );
    }

    #[test]
    fn variants_unify() {
        let forms = [
            "http://Example.de/dir/index.html",
            "HTTP://example.DE:80/dir/index.html#top",
            "http://example.de/dir/",
        ];
        let canon: Vec<String> = forms.iter().map(|u| canonicalize(u)).collect();
        assert!(canon.iter().all(|c| c == &canon[0]), "{canon:?}");
    }

    #[test]
    fn schemeless_inputs_pass_through() {
        assert_eq!(canonicalize("/local/path"), "/local/path");
        assert_eq!(canonicalize("CACHE.MGR:stats"), "CACHE.MGR:stats");
    }
}
