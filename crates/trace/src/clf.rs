//! Parser for NCSA Common/Combined Log Format lines.
//!
//! Web *servers* (as opposed to the Squid proxies of the paper) log in
//! CLF; the workload-characterization literature the paper builds on
//! (Arlitt & Williamson's server study, reference \[2\]) works from such
//! logs. One line per request:
//!
//! ```text
//! host ident authuser [day/mon/year:hh:mm:ss zone] "METHOD url HTTP/v" status bytes
//! ```
//!
//! Combined format appends `"referer" "user-agent"`, which this parser
//! tolerates and ignores.

use crate::error::TraceError;
use crate::status::HttpStatus;
use crate::types::{ByteSize, Timestamp};

/// One parsed CLF entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClfEntry {
    /// Client host, verbatim.
    pub host: String,
    /// Request completion time (epoch milliseconds, UTC).
    pub timestamp: Timestamp,
    /// HTTP request method.
    pub method: String,
    /// Requested URL.
    pub url: String,
    /// Response status.
    pub status: HttpStatus,
    /// Response body bytes (`-` in the log becomes 0).
    pub size: ByteSize,
}

/// Parses one CLF line. `line_no` is used for error reporting only.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on structural or numeric errors.
///
/// ```
/// use webcache_trace::clf::parse_line;
///
/// let e = parse_line(
///     r#"wpbfl2-45.gate.net - - [29/Aug/1995:00:00:00 -0400] "GET /icons/circle.gif HTTP/1.0" 200 2624"#,
///     1,
/// ).unwrap();
/// assert_eq!(e.status.code(), 200);
/// assert_eq!(e.size.as_u64(), 2624);
/// assert_eq!(e.url, "/icons/circle.gif");
/// ```
pub fn parse_line(line: &str, line_no: usize) -> Result<ClfEntry, TraceError> {
    let err = |msg: String| TraceError::parse(line_no, msg);

    // host ident user [
    let (head, rest) = line
        .split_once('[')
        .ok_or_else(|| err("missing `[timestamp`".into()))?;
    let mut head_fields = head.split_ascii_whitespace();
    let host = head_fields
        .next()
        .ok_or_else(|| err("missing host".into()))?
        .to_owned();

    // date] "request" status bytes
    let (date, rest) = rest
        .split_once(']')
        .ok_or_else(|| err("missing `]` after timestamp".into()))?;
    let timestamp =
        parse_clf_timestamp(date).ok_or_else(|| err(format!("bad timestamp `{date}`")))?;

    let (_, rest) = rest
        .split_once('"')
        .ok_or_else(|| err("missing request line".into()))?;
    let (request, rest) = rest
        .split_once('"')
        .ok_or_else(|| err("unterminated request line".into()))?;
    let mut req_fields = request.split_ascii_whitespace();
    let method = req_fields
        .next()
        .ok_or_else(|| err("empty request line".into()))?
        .to_owned();
    let url = req_fields
        .next()
        .ok_or_else(|| err("request line without URL".into()))?
        .to_owned();

    let mut tail = rest.split_ascii_whitespace();
    let status_raw = tail.next().ok_or_else(|| err("missing status".into()))?;
    let status = status_raw
        .parse::<u16>()
        .map(HttpStatus::new)
        .map_err(|_| err(format!("bad status `{status_raw}`")))?;
    let size_raw = tail.next().ok_or_else(|| err("missing size".into()))?;
    let size = if size_raw == "-" {
        ByteSize::ZERO
    } else {
        size_raw
            .parse::<u64>()
            .map(ByteSize::new)
            .map_err(|_| err(format!("bad size `{size_raw}`")))?
    };

    Ok(ClfEntry {
        host,
        timestamp,
        method,
        url,
        status,
        size,
    })
}

/// Parses every non-empty line of a CLF log.
///
/// # Errors
///
/// Fails on the first malformed line.
pub fn parse_log(text: &str) -> Result<Vec<ClfEntry>, TraceError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l, i + 1))
        .collect()
}

/// Parses a `dd/Mon/yyyy:hh:mm:ss ±zzzz` CLF timestamp into UTC epoch
/// milliseconds.
fn parse_clf_timestamp(raw: &str) -> Option<Timestamp> {
    let raw = raw.trim();
    let (datetime, zone) = match raw.rsplit_once(' ') {
        Some((dt, z)) => (dt, Some(z)),
        None => (raw, None),
    };
    let mut parts = datetime.split(':');
    let date = parts.next()?;
    let hour: i64 = parts.next()?.parse().ok()?;
    let minute: i64 = parts.next()?.parse().ok()?;
    let second: i64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(0..24).contains(&hour) || !(0..60).contains(&minute) {
        return None;
    }

    let mut date_parts = date.split('/');
    let day: i64 = date_parts.next()?.parse().ok()?;
    let month = month_number(date_parts.next()?)?;
    let year: i64 = date_parts.next()?.parse().ok()?;
    if date_parts.next().is_some() || !(1..=31).contains(&day) {
        return None;
    }

    let days = days_from_civil(year, month, day);
    let mut epoch_secs = days * 86_400 + hour * 3_600 + minute * 60 + second;

    if let Some(zone) = zone {
        // ±hhmm offset; subtract it to normalize to UTC.
        let (sign, digits) = zone.split_at(1);
        let sign = match sign {
            "+" => 1,
            "-" => -1,
            _ => return None,
        };
        if digits.len() != 4 {
            return None;
        }
        let zh: i64 = digits[..2].parse().ok()?;
        let zm: i64 = digits[2..].parse().ok()?;
        epoch_secs -= sign * (zh * 3_600 + zm * 60);
    }
    u64::try_from(epoch_secs)
        .ok()
        .map(|s| Timestamp::from_millis(s * 1000))
}

fn month_number(name: &str) -> Option<i64> {
    const MONTHS: [&str; 12] = [
        "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
    ];
    let lower = name.to_ascii_lowercase();
    MONTHS
        .iter()
        .position(|&m| m == lower)
        .map(|i| i as i64 + 1)
}

/// Days since 1970-01-01 for a proleptic Gregorian civil date
/// (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(year: i64, month: i64, day: i64) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"wpbfl2-45.gate.net - - [29/Aug/1995:00:00:00 -0400] "GET /icons/circle.gif HTTP/1.0" 200 2624"#;

    #[test]
    fn parses_nasa_style_line() {
        let e = parse_line(LINE, 1).unwrap();
        assert_eq!(e.host, "wpbfl2-45.gate.net");
        assert_eq!(e.method, "GET");
        assert_eq!(e.url, "/icons/circle.gif");
        assert_eq!(e.status, HttpStatus::OK);
        assert_eq!(e.size.as_u64(), 2624);
    }

    #[test]
    fn timezone_is_normalized_to_utc() {
        // -0400 means local = UTC-4, so UTC is 4 hours later.
        let east = parse_line(LINE, 1).unwrap().timestamp;
        let utc_line = LINE.replace("-0400", "+0000");
        let utc = parse_line(&utc_line, 1).unwrap().timestamp;
        assert_eq!(east.as_millis(), utc.as_millis() + 4 * 3600 * 1000);
    }

    #[test]
    fn epoch_reference_date() {
        // 1970-01-01 00:00:00 +0000 is epoch zero.
        let line = r#"h - - [01/Jan/1970:00:00:00 +0000] "GET / HTTP/1.0" 200 1"#;
        assert_eq!(parse_line(line, 1).unwrap().timestamp, Timestamp::ZERO);
        // Known constant: 2000-01-01 00:00:00 UTC = 946684800 s.
        let line = r#"h - - [01/Jan/2000:00:00:00 +0000] "GET / HTTP/1.0" 200 1"#;
        assert_eq!(
            parse_line(line, 1).unwrap().timestamp.as_millis(),
            946_684_800_000
        );
    }

    #[test]
    fn dash_size_is_zero() {
        let line = r#"h - - [01/Jan/2000:00:00:00 +0000] "GET /x HTTP/1.0" 304 -"#;
        let e = parse_line(line, 1).unwrap();
        assert_eq!(e.size, ByteSize::ZERO);
        assert_eq!(e.status, HttpStatus::NOT_MODIFIED);
    }

    #[test]
    fn combined_format_extras_are_ignored() {
        let line = r#"h - - [01/Jan/2000:00:00:00 +0000] "GET /x HTTP/1.1" 200 17 "http://ref" "Mozilla/4.0""#;
        let e = parse_line(line, 1).unwrap();
        assert_eq!(e.size.as_u64(), 17);
    }

    #[test]
    fn malformed_lines_error() {
        for (bad, needle) in [
            ("no brackets here", "[timestamp"),
            (
                r#"h - - [bad date] "GET /x HTTP/1.0" 200 1"#,
                "bad timestamp",
            ),
            (
                r#"h - - [01/Jan/2000:00:00:00 +0000] GET /x 200 1"#,
                "request line",
            ),
            (
                r#"h - - [01/Jan/2000:00:00:00 +0000] "GET /x HTTP/1.0" abc 1"#,
                "bad status",
            ),
            (
                r#"h - - [01/Jan/2000:00:00:00 +0000] "GET /x HTTP/1.0" 200 xyz"#,
                "bad size",
            ),
        ] {
            let err = parse_line(bad, 3).unwrap_err().to_string();
            assert!(err.contains(needle), "`{bad}` -> `{err}`");
            assert!(err.contains("line 3"));
        }
    }

    #[test]
    fn month_names_roundtrip() {
        for (i, m) in [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(month_number(m), Some(i as i64 + 1));
        }
        assert_eq!(month_number("Foo"), None);
    }

    #[test]
    fn leap_year_handling() {
        // 2000-02-29 exists; 2000-03-01 is the next day.
        let feb29 = days_from_civil(2000, 2, 29);
        let mar01 = days_from_civil(2000, 3, 1);
        assert_eq!(mar01, feb29 + 1);
        // Cross-check against a known constant: 2000-03-01 = 11017 days.
        assert_eq!(mar01, 11_017);
    }

    #[test]
    fn parse_log_batches() {
        let text = format!("{LINE}\n\n{LINE}\n");
        assert_eq!(parse_log(&text).unwrap().len(), 2);
    }
}
