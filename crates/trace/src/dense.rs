//! A dense, struct-of-arrays view of a [`Trace`] for the simulation hot
//! path.
//!
//! A [`Trace`] stores one 32-byte [`Request`](crate::Request) struct per
//! request, keyed by sparse 64-bit document ids; the simulator then pays a
//! hash lookup per request to find per-document state. [`DenseTrace`]
//! eliminates both costs up front: it interns every [`DocId`] to a
//! contiguous `u32` *slot* (numbered in first-appearance order) and lays
//! the requests out as parallel arrays — one `Vec<u32>` of slots, one
//! `Vec<u64>` of transfer sizes, one `Vec<u8>` of document-type indices.
//! Per-document simulator state can then live in plain `Vec`s indexed by
//! slot, and the per-request working set shrinks from 32 to 13 bytes.
//!
//! The view is built **once** per sweep and shared read-only across worker
//! threads; each worker replays it against its own cache.

use crate::doctype::DocumentType;
use crate::error::TraceError;
use crate::format::type_from_char;
use crate::format_bin::{MAGIC, RECORD_BYTES, VERSION};
use crate::fxhash::FxHashMap;
use crate::record::Trace;
use crate::types::{ByteSize, DocId};

/// A struct-of-arrays trace with documents interned to dense `u32` slots.
/// See the module-level documentation above.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseTrace {
    /// Per request: the interned document slot.
    docs: Vec<u32>,
    /// Per request: the transfer size in bytes.
    sizes: Vec<u64>,
    /// Per request: `DocumentType::index()` of the response.
    types: Vec<u8>,
    /// Number of distinct documents (== the number of slots handed out).
    distinct: usize,
}

impl DenseTrace {
    /// Builds the dense view of `trace`, interning document ids in
    /// first-appearance order: the document of the first request gets
    /// slot 0, the next previously unseen document slot 1, and so on.
    pub fn build(trace: &Trace) -> Self {
        let requests = trace.requests();
        let mut docs = Vec::with_capacity(requests.len());
        let mut sizes = Vec::with_capacity(requests.len());
        let mut types = Vec::with_capacity(requests.len());
        let mut intern: FxHashMap<u64, u32> = FxHashMap::default();
        for request in requests {
            let next = intern.len() as u32;
            let slot = *intern.entry(request.doc.as_u64()).or_insert(next);
            docs.push(slot);
            sizes.push(request.size.as_u64());
            types.push(request.doc_type.index() as u8);
        }
        DenseTrace {
            docs,
            sizes,
            types,
            distinct: intern.len(),
        }
    }

    /// Builds the dense view straight from WCTB binary bytes
    /// (see [`crate::format_bin`]), skipping the intermediate
    /// [`Trace`]/`Request` vector entirely.
    ///
    /// Records are decoded and interned in a single pass: per request
    /// only the 13 bytes the simulator consumes (slot, size, type) are
    /// materialized, instead of a 32-byte `Request` first. Timestamps
    /// are validated-over and dropped, exactly as [`DenseTrace::build`]
    /// drops them. Equivalent to
    /// `DenseTrace::build(&format_bin::from_bytes(bytes)?)` — the
    /// round-trip tests pin that — at roughly half the peak memory.
    ///
    /// # Errors
    ///
    /// The same [`TraceError::Parse`] cases as
    /// [`crate::format_bin::from_bytes`]: bad magic, unsupported
    /// version, truncated header or records, trailing bytes, invalid
    /// type tags.
    pub fn from_wctb_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let Some(header) = bytes.get(..16) else {
            return Err(TraceError::parse(0, "truncated header"));
        };
        if header[..4] != MAGIC {
            return Err(TraceError::parse(0, "bad magic (not a WCTB trace)"));
        }
        if header[4] != VERSION {
            return Err(TraceError::parse(
                0,
                format!("unsupported version {}", header[4]),
            ));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let body = &bytes[16..];

        let cap = usize::try_from(count).unwrap_or(0);
        let mut docs = Vec::with_capacity(cap);
        let mut sizes = Vec::with_capacity(cap);
        let mut types = Vec::with_capacity(cap);
        let mut intern: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..count {
            let offset = i as usize * RECORD_BYTES;
            let Some(record) = body.get(offset..offset + RECORD_BYTES) else {
                return Err(TraceError::parse(
                    i as usize + 1,
                    format!("truncated record {i} of {count}"),
                ));
            };
            // record[0..8] is the timestamp: validated by presence, unused.
            let doc = u64::from_le_bytes(record[8..16].try_into().expect("8 bytes"));
            let size = u64::from_le_bytes(record[16..24].try_into().expect("8 bytes"));
            let ty = type_from_char(record[24] as char).ok_or_else(|| {
                TraceError::parse(i as usize + 1, format!("bad type tag {}", record[24]))
            })?;
            let next = intern.len() as u32;
            let slot = *intern.entry(doc).or_insert(next);
            docs.push(slot);
            sizes.push(size);
            types.push(ty.index() as u8);
        }
        if body.len() > cap * RECORD_BYTES {
            return Err(TraceError::parse(
                cap + 1,
                "trailing bytes after final record",
            ));
        }
        Ok(DenseTrace {
            docs,
            sizes,
            types,
            distinct: intern.len(),
        })
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the trace contains no requests.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct documents; slots are exactly
    /// `0..distinct_documents()`. Size per-slot state from this.
    pub fn distinct_documents(&self) -> usize {
        self.distinct
    }

    /// The interned document slot of each request, in arrival order.
    pub fn docs(&self) -> &[u32] {
        &self.docs
    }

    /// The transfer size of each request, in arrival order.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// The `DocumentType::index()` of each request, in arrival order.
    pub fn type_indices(&self) -> &[u8] {
        &self.types
    }

    /// The request at `index` as `(slot, size, type)`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn request(&self, index: usize) -> (u32, ByteSize, DocumentType) {
        (
            self.docs[index],
            ByteSize::new(self.sizes[index]),
            DocumentType::from_index(self.types[index] as usize),
        )
    }

    /// Reconstructs the slot's stand-in [`DocId`] (the slot number itself).
    ///
    /// Dense consumers address documents by slot; this helper exists for
    /// code that needs a `DocId`-typed handle for such a slot.
    pub fn slot_doc(slot: u32) -> DocId {
        DocId::new(slot as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Request;
    use crate::types::Timestamp;

    fn req(doc: u64, ty: DocumentType, size: u64) -> Request {
        Request::new(Timestamp::ZERO, DocId::new(doc), ty, ByteSize::new(size))
    }

    #[test]
    fn interns_in_first_appearance_order() {
        let trace: Trace = vec![
            req(900, DocumentType::Html, 10),
            req(3, DocumentType::Image, 20),
            req(900, DocumentType::Html, 10),
            req(77, DocumentType::Other, 5),
        ]
        .into();
        let dense = DenseTrace::build(&trace);
        assert_eq!(dense.len(), 4);
        assert_eq!(dense.docs(), &[0, 1, 0, 2]);
        assert_eq!(dense.distinct_documents(), 3);
        assert_eq!(dense.distinct_documents(), trace.distinct_documents());
    }

    #[test]
    fn parallel_arrays_carry_sizes_and_types() {
        let trace: Trace = vec![
            req(1, DocumentType::MultiMedia, 5_000),
            req(2, DocumentType::Application, 300),
        ]
        .into();
        let dense = DenseTrace::build(&trace);
        assert_eq!(dense.sizes(), &[5_000, 300]);
        assert_eq!(
            dense.type_indices(),
            &[
                DocumentType::MultiMedia.index() as u8,
                DocumentType::Application.index() as u8
            ]
        );
        let (slot, size, ty) = dense.request(0);
        assert_eq!(slot, 0);
        assert_eq!(size, ByteSize::new(5_000));
        assert_eq!(ty, DocumentType::MultiMedia);
    }

    #[test]
    fn empty_trace_builds_empty_view() {
        let dense = DenseTrace::build(&Trace::new());
        assert!(dense.is_empty());
        assert_eq!(dense.distinct_documents(), 0);
    }

    #[test]
    fn slot_doc_roundtrips() {
        assert_eq!(DenseTrace::slot_doc(7).as_u64(), 7);
    }

    fn mixed_trace() -> Trace {
        (0..150u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i * 11),
                    DocId::new(1_000_000 + i % 23),
                    DocumentType::ALL[(i % 5) as usize],
                    ByteSize::new(i * 31 + 1),
                )
            })
            .collect()
    }

    #[test]
    fn from_wctb_bytes_equals_build_of_decoded_trace() {
        let trace = mixed_trace();
        let bytes = crate::format_bin::to_bytes(&trace);
        let direct = DenseTrace::from_wctb_bytes(&bytes).unwrap();
        let via_trace = DenseTrace::build(&crate::format_bin::from_bytes(&bytes).unwrap());
        assert_eq!(direct, via_trace);
        assert_eq!(direct, DenseTrace::build(&trace));
    }

    #[test]
    fn from_wctb_bytes_handles_empty_trace() {
        let bytes = crate::format_bin::to_bytes(&Trace::new());
        let dense = DenseTrace::from_wctb_bytes(&bytes).unwrap();
        assert!(dense.is_empty());
        assert_eq!(dense.distinct_documents(), 0);
    }

    #[test]
    fn from_wctb_bytes_rejects_what_the_trace_reader_rejects() {
        let good = crate::format_bin::to_bytes(&mixed_trace());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = DenseTrace::from_wctb_bytes(&bad_magic)
            .unwrap_err()
            .to_string();
        assert!(err.contains("magic"), "{err}");

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        let err = DenseTrace::from_wctb_bytes(&bad_version)
            .unwrap_err()
            .to_string();
        assert!(err.contains("version 9"), "{err}");

        let err = DenseTrace::from_wctb_bytes(&good[..10])
            .unwrap_err()
            .to_string();
        assert!(err.contains("truncated header"), "{err}");

        let err = DenseTrace::from_wctb_bytes(&good[..good.len() - 7])
            .unwrap_err()
            .to_string();
        assert!(err.contains("truncated record"), "{err}");

        let mut trailing = good.clone();
        trailing.push(0xFF);
        let err = DenseTrace::from_wctb_bytes(&trailing)
            .unwrap_err()
            .to_string();
        assert!(err.contains("trailing"), "{err}");

        let mut bad_tag = good;
        bad_tag[16 + 24] = b'Q';
        let err = DenseTrace::from_wctb_bytes(&bad_tag)
            .unwrap_err()
            .to_string();
        assert!(err.contains("type tag"), "{err}");
    }
}
