//! Document-type classification.
//!
//! The DSN 2002 study breaks the request stream into four main classes of
//! web documents — images, HTML/text, multi media and application — plus a
//! catch-all *other* class. Classification uses the `Content-Type` entry of
//! the HTTP response header when present and falls back to guessing from the
//! file extension of the requested URL (paper, Section 2).

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// The document classes distinguished by the study.
///
/// * [`Image`](DocumentType::Image) — e.g. `.gif`, `.jpeg`
/// * [`Html`](DocumentType::Html) — HTML plus plain-text documents
///   (`.html`, `.htm`; text files such as `.tex`, `.java` are folded into
///   this class, following the paper)
/// * [`MultiMedia`](DocumentType::MultiMedia) — e.g. `.mp3`, `.ram`,
///   `.mpeg`, `.mov`
/// * [`Application`](DocumentType::Application) — e.g. `.ps`, `.pdf`, `.zip`
/// * [`Other`](DocumentType::Other) — everything else
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum DocumentType {
    /// Image documents (`image/*`).
    Image,
    /// HTML and plain-text documents (`text/*`).
    Html,
    /// Audio and video documents (`audio/*`, `video/*`).
    MultiMedia,
    /// Application documents (`application/*`).
    Application,
    /// Documents that fit none of the four main classes.
    #[default]
    Other,
}

impl DocumentType {
    /// All document types, in table order (matching the paper's columns).
    pub const ALL: [DocumentType; 5] = [
        DocumentType::Image,
        DocumentType::Html,
        DocumentType::MultiMedia,
        DocumentType::Application,
        DocumentType::Other,
    ];

    /// The four main classes, excluding [`DocumentType::Other`].
    pub const MAIN: [DocumentType; 4] = [
        DocumentType::Image,
        DocumentType::Html,
        DocumentType::MultiMedia,
        DocumentType::Application,
    ];

    /// Dense index of this type in [`DocumentType::ALL`], usable with
    /// [`TypeMap`].
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The inverse of [`DocumentType::index`].
    ///
    /// # Panics
    ///
    /// Panics when `index` is not a valid type index (`>= 5`).
    #[inline]
    pub const fn from_index(index: usize) -> DocumentType {
        match index {
            0 => DocumentType::Image,
            1 => DocumentType::Html,
            2 => DocumentType::MultiMedia,
            3 => DocumentType::Application,
            4 => DocumentType::Other,
            _ => panic!("document type index out of range"),
        }
    }

    /// Classifies a document from its MIME type, falling back to the URL's
    /// file extension when the MIME type is absent or unknown.
    ///
    /// ```
    /// use webcache_trace::DocumentType;
    ///
    /// assert_eq!(
    ///     DocumentType::classify(Some("image/gif"), "http://e.com/a.gif"),
    ///     DocumentType::Image,
    /// );
    /// // No content type recorded: guess from the extension.
    /// assert_eq!(
    ///     DocumentType::classify(None, "http://e.com/paper.pdf"),
    ///     DocumentType::Application,
    /// );
    /// ```
    pub fn classify(mime: Option<&str>, url: &str) -> DocumentType {
        if let Some(mime) = mime {
            if let Some(ty) = Self::from_mime(mime) {
                return ty;
            }
        }
        Self::from_url(url)
    }

    /// Classifies a document from a MIME type string such as `text/html`.
    ///
    /// Returns `None` when the MIME type is missing, malformed or carries no
    /// class information (e.g. `-` as logged by Squid for absent headers),
    /// in which case the caller should fall back to
    /// [`DocumentType::from_url`].
    pub fn from_mime(mime: &str) -> Option<DocumentType> {
        let mime = mime.trim();
        if mime.is_empty() || mime == "-" {
            return None;
        }
        // Strip any parameters: "text/html; charset=utf-8" -> "text/html".
        let essence = mime.split(';').next().unwrap_or(mime).trim();
        let (top, sub) = essence.split_once('/')?;
        let top = top.to_ascii_lowercase();
        let sub = sub.to_ascii_lowercase();
        match top.as_str() {
            "image" => Some(DocumentType::Image),
            "text" => Some(DocumentType::Html),
            "audio" | "video" => Some(DocumentType::MultiMedia),
            "application" => Some(match sub.as_str() {
                // A handful of application/* subtypes are really markup or
                // media; keep the class assignment faithful to content.
                "xhtml+xml" | "xml" => DocumentType::Html,
                "x-shockwave-flash" | "mp4" | "ogg" | "vnd.rn-realmedia" => {
                    DocumentType::MultiMedia
                }
                _ => DocumentType::Application,
            }),
            _ => Some(DocumentType::Other),
        }
    }

    /// Guesses the document type from the file extension of a URL.
    ///
    /// Query strings and fragments are ignored. URLs without a recognized
    /// extension classify as [`DocumentType::Other`], except that a URL
    /// ending in `/` is assumed to serve an HTML index page.
    pub fn from_url(url: &str) -> DocumentType {
        let path = url.split(['?', '#']).next().unwrap_or(url);
        if path.ends_with('/') {
            return DocumentType::Html;
        }
        let file = path.rsplit('/').next().unwrap_or(path);
        match file.rsplit_once('.') {
            Some((_, ext)) => Self::from_extension(ext),
            None => DocumentType::Other,
        }
    }

    /// Classifies a bare file extension (without the leading dot).
    ///
    /// The extension tables follow Section 2 of the paper: text files such
    /// as `.tex` and `.java` are added to the HTML class.
    pub fn from_extension(ext: &str) -> DocumentType {
        match ext.to_ascii_lowercase().as_str() {
            "gif" | "jpg" | "jpeg" | "jpe" | "png" | "bmp" | "ico" | "tif" | "tiff" | "xbm"
            | "xpm" | "pbm" | "pgm" | "ppm" | "svg" | "webp" => DocumentType::Image,
            "html" | "htm" | "shtml" | "phtml" | "asp" | "aspx" | "php" | "php3" | "jsp"
            | "txt" | "text" | "tex" | "java" | "c" | "h" | "cc" | "cpp" | "css" | "js" | "xml"
            | "rss" | "md" => DocumentType::Html,
            "mp3" | "mp2" | "mpga" | "wav" | "au" | "aif" | "aiff" | "ra" | "ram" | "rm"
            | "mid" | "midi" | "mpg" | "mpeg" | "mpe" | "mp4" | "mov" | "qt" | "avi" | "asf"
            | "asx" | "wmv" | "wma" | "ogg" | "flv" | "swf" => DocumentType::MultiMedia,
            "ps" | "eps" | "pdf" | "zip" | "gz" | "tgz" | "tar" | "z" | "bz2" | "rar" | "exe"
            | "bin" | "dll" | "doc" | "dot" | "xls" | "ppt" | "rtf" | "dvi" | "jar" | "class"
            | "rpm" | "deb" | "iso" | "msi" | "cab" | "hqx" | "sit" | "dmg" => {
                DocumentType::Application
            }
            _ => DocumentType::Other,
        }
    }

    /// Short label used in tables and report headers.
    pub const fn label(self) -> &'static str {
        match self {
            DocumentType::Image => "Images",
            DocumentType::Html => "HTML",
            DocumentType::MultiMedia => "Multi Media",
            DocumentType::Application => "Application",
            DocumentType::Other => "Other",
        }
    }
}

impl fmt::Display for DocumentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fixed map from [`DocumentType`] to `T` — one slot per document class.
///
/// Used for per-type counters, per-type generator parameters and per-type
/// report rows. Indexing is by `DocumentType` value:
///
/// ```
/// use webcache_trace::{DocumentType, TypeMap};
///
/// let mut requests: TypeMap<u64> = TypeMap::default();
/// requests[DocumentType::Image] += 1;
/// assert_eq!(requests[DocumentType::Image], 1);
/// assert_eq!(requests[DocumentType::Html], 0);
/// assert_eq!(requests.iter().count(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeMap<T> {
    slots: [T; 5],
}

impl<T> TypeMap<T> {
    /// Creates a map by evaluating `f` for every document type.
    pub fn from_fn(mut f: impl FnMut(DocumentType) -> T) -> Self {
        TypeMap {
            slots: DocumentType::ALL.map(&mut f),
        }
    }

    /// Creates a map with every slot set to a clone of `value`.
    pub fn splat(value: T) -> Self
    where
        T: Clone,
    {
        TypeMap {
            slots: [
                value.clone(),
                value.clone(),
                value.clone(),
                value.clone(),
                value,
            ],
        }
    }

    /// Iterates over `(DocumentType, &T)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (DocumentType, &T)> {
        DocumentType::ALL.iter().copied().zip(self.slots.iter())
    }

    /// Iterates over `(DocumentType, &mut T)` pairs in table order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (DocumentType, &mut T)> {
        DocumentType::ALL.iter().copied().zip(self.slots.iter_mut())
    }

    /// Returns a map holding `f` applied to each slot.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> TypeMap<U> {
        TypeMap::from_fn(|ty| f(&self[ty]))
    }

    /// Borrows the underlying slots in [`DocumentType::ALL`] order.
    pub fn as_slice(&self) -> &[T; 5] {
        &self.slots
    }
}

impl<T: Default> Default for TypeMap<T> {
    fn default() -> Self {
        TypeMap {
            slots: Default::default(),
        }
    }
}

impl<T> Index<DocumentType> for TypeMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, ty: DocumentType) -> &T {
        &self.slots[ty.index()]
    }
}

impl<T> IndexMut<DocumentType> for TypeMap<T> {
    #[inline]
    fn index_mut(&mut self, ty: DocumentType) -> &mut T {
        &mut self.slots[ty.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, ty) in DocumentType::ALL.iter().enumerate() {
            assert_eq!(ty.index(), i);
            assert_eq!(DocumentType::from_index(i), *ty);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = DocumentType::from_index(5);
    }

    #[test]
    fn mime_top_level_classes() {
        assert_eq!(
            DocumentType::from_mime("image/gif"),
            Some(DocumentType::Image)
        );
        assert_eq!(
            DocumentType::from_mime("text/html"),
            Some(DocumentType::Html)
        );
        assert_eq!(
            DocumentType::from_mime("text/plain"),
            Some(DocumentType::Html)
        );
        assert_eq!(
            DocumentType::from_mime("audio/mpeg"),
            Some(DocumentType::MultiMedia)
        );
        assert_eq!(
            DocumentType::from_mime("video/quicktime"),
            Some(DocumentType::MultiMedia)
        );
        assert_eq!(
            DocumentType::from_mime("application/pdf"),
            Some(DocumentType::Application)
        );
        assert_eq!(
            DocumentType::from_mime("model/vrml"),
            Some(DocumentType::Other)
        );
    }

    #[test]
    fn mime_parameters_are_stripped() {
        assert_eq!(
            DocumentType::from_mime("text/html; charset=iso-8859-1"),
            Some(DocumentType::Html)
        );
        assert_eq!(
            DocumentType::from_mime("  IMAGE/JPEG "),
            Some(DocumentType::Image),
            "case and whitespace are normalized"
        );
    }

    #[test]
    fn mime_application_special_cases() {
        assert_eq!(
            DocumentType::from_mime("application/xhtml+xml"),
            Some(DocumentType::Html)
        );
        assert_eq!(
            DocumentType::from_mime("application/x-shockwave-flash"),
            Some(DocumentType::MultiMedia)
        );
        assert_eq!(
            DocumentType::from_mime("application/zip"),
            Some(DocumentType::Application)
        );
    }

    #[test]
    fn missing_mime_yields_none() {
        assert_eq!(DocumentType::from_mime("-"), None);
        assert_eq!(DocumentType::from_mime(""), None);
        assert_eq!(DocumentType::from_mime("nonsense"), None);
    }

    #[test]
    fn url_extension_fallback() {
        assert_eq!(
            DocumentType::from_url("http://a.de/pics/logo.GIF"),
            DocumentType::Image
        );
        assert_eq!(
            DocumentType::from_url("http://a.de/paper.ps"),
            DocumentType::Application
        );
        assert_eq!(
            DocumentType::from_url("http://a.de/song.mp3?session=1"),
            DocumentType::MultiMedia,
            "query strings are ignored"
        );
        assert_eq!(
            DocumentType::from_url("http://a.de/dir/"),
            DocumentType::Html
        );
        assert_eq!(
            DocumentType::from_url("http://a.de/noext"),
            DocumentType::Other
        );
        assert_eq!(
            DocumentType::from_url("http://a.de/x.unknownext"),
            DocumentType::Other
        );
    }

    #[test]
    fn text_files_fold_into_html_class() {
        assert_eq!(DocumentType::from_extension("tex"), DocumentType::Html);
        assert_eq!(DocumentType::from_extension("java"), DocumentType::Html);
    }

    #[test]
    fn classify_prefers_mime_over_extension() {
        // Content type says image even though the URL looks like HTML.
        assert_eq!(
            DocumentType::classify(Some("image/png"), "http://a.de/page.html"),
            DocumentType::Image
        );
        // Unusable content type: fall back to the extension.
        assert_eq!(
            DocumentType::classify(Some("-"), "http://a.de/page.html"),
            DocumentType::Html
        );
    }

    #[test]
    fn type_map_from_fn_and_map() {
        let lengths = TypeMap::from_fn(|ty| ty.label().len());
        assert_eq!(lengths[DocumentType::Image], "Images".len());
        let doubled = lengths.map(|n| n * 2);
        assert_eq!(doubled[DocumentType::Html], "HTML".len() * 2);
    }

    #[test]
    fn type_map_splat_and_iter_mut() {
        let mut m = TypeMap::splat(1u32);
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert!(m.iter().all(|(_, v)| *v == 2));
        assert_eq!(m.as_slice(), &[2, 2, 2, 2, 2]);
    }

    #[test]
    fn display_labels() {
        assert_eq!(DocumentType::MultiMedia.to_string(), "Multi Media");
        assert_eq!(DocumentType::Other.to_string(), "Other");
    }
}
