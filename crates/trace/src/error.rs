//! Error types for trace parsing and I/O.

use std::fmt;
use std::io;

/// Errors produced while reading, parsing or writing traces.
#[derive(Debug)]
pub enum TraceError {
    /// A log or trace line could not be parsed.
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O operation failed.
    Io(io::Error),
}

impl TraceError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        TraceError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TraceError::parse(3, "bad field");
        assert_eq!(e.to_string(), "parse error at line 3: bad field");
        let io = TraceError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let io = TraceError::from(io::Error::other("x"));
        assert!(io.source().is_some());
        assert!(TraceError::parse(1, "y").source().is_none());
    }
}
