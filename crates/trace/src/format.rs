//! Compact text format for persisting preprocessed traces.
//!
//! One request per line, whitespace-separated:
//!
//! ```text
//! <timestamp-ms> <doc-id> <type-char> <transfer-bytes>
//! ```
//!
//! where `<type-char>` is `I` (image), `H` (HTML), `M` (multi media),
//! `A` (application) or `O` (other). Lines starting with `#` are comments.
//! The format is intentionally trivial so traces can be produced or
//! consumed by awk one-liners during analysis.

use std::io::{self, BufRead, Write};

use crate::doctype::DocumentType;
use crate::error::TraceError;
use crate::record::{Request, Trace};
use crate::types::{ByteSize, DocId, Timestamp};

/// Single-character tag for a document type.
pub fn type_char(ty: DocumentType) -> char {
    match ty {
        DocumentType::Image => 'I',
        DocumentType::Html => 'H',
        DocumentType::MultiMedia => 'M',
        DocumentType::Application => 'A',
        DocumentType::Other => 'O',
    }
}

/// Inverse of [`type_char`].
pub fn type_from_char(c: char) -> Option<DocumentType> {
    match c.to_ascii_uppercase() {
        'I' => Some(DocumentType::Image),
        'H' => Some(DocumentType::Html),
        'M' => Some(DocumentType::MultiMedia),
        'A' => Some(DocumentType::Application),
        'O' => Some(DocumentType::Other),
        _ => None,
    }
}

/// Writes a trace in the compact text format.
///
/// # Errors
///
/// Propagates any I/O error from `writer`. A `&mut Vec<u8>` or `&mut` of
/// any `Write` implementor can be passed.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writeln!(writer, "# webcache trace v1: ts_ms doc_id type size_bytes")?;
    for r in trace {
        writeln!(
            writer,
            "{} {} {} {}",
            r.timestamp.as_millis(),
            r.doc.as_u64(),
            type_char(r.doc_type),
            r.size.as_u64(),
        )?;
    }
    Ok(())
}

/// Reads a trace in the compact text format.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] for malformed lines and [`TraceError::Io`]
/// for reader failures.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, TraceError> {
    let mut trace = Trace::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        trace.push(parse_request_line(trimmed, line_no)?);
    }
    Ok(trace)
}

fn parse_request_line(line: &str, line_no: usize) -> Result<Request, TraceError> {
    let mut fields = line.split_ascii_whitespace();
    let mut next = |name: &str| {
        fields
            .next()
            .ok_or_else(|| TraceError::parse(line_no, format!("missing field `{name}`")))
    };
    let ts: u64 = next("timestamp")?
        .parse()
        .map_err(|_| TraceError::parse(line_no, "bad timestamp"))?;
    let doc: u64 = next("doc_id")?
        .parse()
        .map_err(|_| TraceError::parse(line_no, "bad doc id"))?;
    let ty_field = next("type")?;
    let ty = ty_field
        .chars()
        .next()
        .and_then(type_from_char)
        .filter(|_| ty_field.len() == 1)
        .ok_or_else(|| TraceError::parse(line_no, format!("bad type tag `{ty_field}`")))?;
    let size: u64 = next("size")?
        .parse()
        .map_err(|_| TraceError::parse(line_no, "bad size"))?;
    Ok(Request::new(
        Timestamp::from_millis(ts),
        DocId::new(doc),
        ty,
        ByteSize::new(size),
    ))
}

/// Serializes a trace to an in-memory string (convenience for tests and
/// small tools).
pub fn to_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_trace(&mut buf, trace).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format module writes UTF-8 only")
}

/// Parses a trace from an in-memory string.
///
/// # Errors
///
/// Same as [`read_trace`].
pub fn from_str(text: &str) -> Result<Trace, TraceError> {
    read_trace(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            Request::new(
                Timestamp::from_millis(0),
                DocId::new(3),
                DocumentType::Image,
                ByteSize::new(512),
            ),
            Request::new(
                Timestamp::from_millis(1500),
                DocId::new(7),
                DocumentType::MultiMedia,
                ByteSize::new(1 << 20),
            ),
        ]
        .into()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let text = to_string(&t);
        let back = from_str(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n0 1 H 10\n# trailing\n";
        let t = from_str(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.requests()[0].doc_type, DocumentType::Html);
    }

    #[test]
    fn type_chars_roundtrip() {
        for ty in DocumentType::ALL {
            assert_eq!(type_from_char(type_char(ty)), Some(ty));
        }
        assert_eq!(type_from_char('x'), None);
        assert_eq!(
            type_from_char('i'),
            Some(DocumentType::Image),
            "lower-case accepted"
        );
    }

    #[test]
    fn malformed_lines_error_with_position() {
        for (text, needle) in [
            ("0 1 H", "size"),
            ("0 1 Q 10", "type tag"),
            ("0 1 HH 10", "type tag"),
            ("x 1 H 10", "timestamp"),
            ("0 y H 10", "doc id"),
            ("0 1 H z", "size"),
        ] {
            let err = from_str(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
            assert!(err.contains("line 1"), "`{text}` -> `{err}`");
        }
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(from_str("").unwrap().is_empty());
    }
}
