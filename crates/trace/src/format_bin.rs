//! Compact binary format for persisting large traces.
//!
//! The text format ([`crate::format`]) is grep-friendly but costs ≈30
//! bytes and a parse per request; full-scale workloads run to millions
//! of requests, where the fixed-width binary format is ~4× smaller and
//! an order of magnitude faster to load.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"WCTB"          4 bytes
//! version u8 = 1          1 byte
//! reserved [u8; 3]        3 bytes
//! record count u64        8 bytes
//! records: count × {
//!     timestamp_ms u64    8 bytes
//!     doc_id       u64    8 bytes
//!     size_bytes   u64    8 bytes
//!     type_tag     u8     1 byte   (same tags as the text format)
//! }
//! ```
//!
//! The count-prefixed header makes truncation detectable.

use std::io::{self, Read, Write};

use crate::error::TraceError;
use crate::format::{type_char, type_from_char};
use crate::record::{Request, Trace};
use crate::types::{ByteSize, DocId, Timestamp};

/// File magic.
pub const MAGIC: [u8; 4] = *b"WCTB";
/// Current format version.
pub const VERSION: u8 = 1;
/// Bytes per record.
pub const RECORD_BYTES: usize = 25;

/// Writes a trace in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace_bin<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&[VERSION, 0, 0, 0])?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace {
        writer.write_all(&r.timestamp.as_millis().to_le_bytes())?;
        writer.write_all(&r.doc.as_u64().to_le_bytes())?;
        writer.write_all(&r.size.as_u64().to_le_bytes())?;
        writer.write_all(&[type_char(r.doc_type) as u8])?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] for bad magic, unsupported version,
/// truncation, or invalid type tags, and [`TraceError::Io`] for reader
/// failures.
pub fn read_trace_bin<R: Read>(mut reader: R) -> Result<Trace, TraceError> {
    let mut header = [0u8; 16];
    reader
        .read_exact(&mut header)
        .map_err(|_| TraceError::parse(0, "truncated header"))?;
    if header[..4] != MAGIC {
        return Err(TraceError::parse(0, "bad magic (not a WCTB trace)"));
    }
    if header[4] != VERSION {
        return Err(TraceError::parse(
            0,
            format!("unsupported version {}", header[4]),
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));

    let mut trace = Trace::with_capacity(usize::try_from(count).unwrap_or(0));
    let mut record = [0u8; RECORD_BYTES];
    for i in 0..count {
        reader.read_exact(&mut record).map_err(|_| {
            TraceError::parse(i as usize + 1, format!("truncated record {i} of {count}"))
        })?;
        let ts = u64::from_le_bytes(record[0..8].try_into().expect("8 bytes"));
        let doc = u64::from_le_bytes(record[8..16].try_into().expect("8 bytes"));
        let size = u64::from_le_bytes(record[16..24].try_into().expect("8 bytes"));
        let ty = type_from_char(record[24] as char).ok_or_else(|| {
            TraceError::parse(i as usize + 1, format!("bad type tag {}", record[24]))
        })?;
        trace.push(Request::new(
            Timestamp::from_millis(ts),
            DocId::new(doc),
            ty,
            ByteSize::new(size),
        ));
    }
    // Trailing data after the declared count indicates a corrupt writer.
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) => Ok(trace),
        Ok(_) => Err(TraceError::parse(
            count as usize + 1,
            "trailing bytes after final record",
        )),
        Err(e) => Err(TraceError::Io(e)),
    }
}

/// Serializes a trace to an in-memory byte vector.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.len() * RECORD_BYTES);
    write_trace_bin(&mut buf, trace).expect("writing to Vec cannot fail");
    buf
}

/// Parses a trace from an in-memory byte slice.
///
/// # Errors
///
/// Same as [`read_trace_bin`].
pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
    read_trace_bin(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctype::DocumentType;

    fn sample() -> Trace {
        (0..100u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(i * 7),
                    DocId::new(i % 13),
                    DocumentType::ALL[(i % 5) as usize],
                    ByteSize::new(i * i + 1),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        assert_eq!(from_bytes(&to_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let bytes = to_bytes(&t);
        assert_eq!(bytes.len(), 16);
        assert_eq!(from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn size_is_fixed_width() {
        let t = sample();
        assert_eq!(to_bytes(&t).len(), 16 + t.len() * RECORD_BYTES);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        let err = from_bytes(&bytes).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 9;
        let err = from_bytes(&bytes).unwrap_err().to_string();
        assert!(err.contains("version 9"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&sample());
        // Cut mid-record.
        let cut = &bytes[..bytes.len() - 7];
        let err = from_bytes(cut).unwrap_err().to_string();
        assert!(err.contains("truncated record"), "{err}");
        // Cut mid-header.
        let err = from_bytes(&bytes[..10]).unwrap_err().to_string();
        assert!(err.contains("truncated header"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0xFF);
        let err = from_bytes(&bytes).unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn bad_type_tag_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[16 + 24] = b'Q'; // first record's type tag
        let err = from_bytes(&bytes).unwrap_err().to_string();
        assert!(err.contains("type tag"), "{err}");
    }

    #[test]
    fn binary_is_smaller_than_text_at_realistic_magnitudes() {
        // Full-scale traces carry hour-plus timestamps, million-scale
        // document ids and kilo-to-megabyte sizes; their decimal forms
        // dominate the text format's footprint.
        let t: Trace = (0..200u64)
            .map(|i| {
                Request::new(
                    Timestamp::from_millis(3_600_000 + i * 40),
                    DocId::new(1_000_000 + i),
                    DocumentType::Image,
                    ByteSize::new(100_000 + i * 997),
                )
            })
            .collect();
        let text = crate::format::to_string(&t).len();
        let bin = to_bytes(&t).len();
        assert!(bin < text, "binary {bin} vs text {text}");
    }
}
