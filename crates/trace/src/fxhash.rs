//! A small inline multiply hasher (the rustc/Firefox "fx" hash).
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3, which is
//! HashDoS-resistant but costs tens of nanoseconds per lookup — far too
//! much for the simulator hot path, where every request performs several
//! map operations on *trusted* keys (document ids and heap items, never
//! attacker-controlled strings). [`FxHasher`] folds each input word into
//! the state with one rotate, one xor and one multiply, which compiles to
//! a handful of instructions and hashes a `u64` key in ~1 ns.
//!
//! Use [`FxHashMap`] / [`FxHashSet`] wherever a hash container keyed by
//! small trusted keys remains on a hot path.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the fxhash algorithm: `π · 2^62` rounded to odd, the
/// constant used by rustc's own hash tables.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The fx hashing state. See the module-level documentation above.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hashes a single `u64` key through [`FxHasher`].
///
/// The one-word fast path used for stateless routing decisions (e.g.
/// picking a shard for a document id): one rotate, one xor, one
/// multiply. Consumers that reduce this to a small range should take
/// the **high** bits — the low bits of a single-multiply hash depend
/// only on the low bits of the key.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u64(key);
    hasher.finish()
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
        assert_ne!(hash(0), hash(1));
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1_000u64 {
            map.insert(i, (i * 7) as u32);
        }
        assert_eq!(map.len(), 1_000);
        assert_eq!(map.get(&500), Some(&3_500));

        let set: FxHashSet<u64> = (0..100).collect();
        assert!(set.contains(&99));
        assert!(!set.contains(&100));
    }

    #[test]
    fn hash_u64_matches_the_hasher_and_mixes_high_bits() {
        let via_hasher = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        for n in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_u64(n), via_hasher(n));
        }
        // Sequential keys must land on spread-out high bits (the shard
        // routers take the top bits).
        let top = |n: u64| hash_u64(n) >> 60;
        let distinct: FxHashSet<u64> = (0..64).map(top).collect();
        assert!(distinct.len() > 8, "top bits barely vary: {distinct:?}");
    }

    #[test]
    fn byte_slices_hash_tail_correctly() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        // Slices differing only in the non-8-aligned tail must differ.
        assert_ne!(hash(b"abcdefgh1"), hash(b"abcdefgh2"));
        assert_ne!(hash(b"short"), hash(b"shorx"));
    }
}
