//! # webcache-trace
//!
//! Request-trace data model for web proxy cache simulation.
//!
//! This crate provides the substrate that the rest of the `webcache`
//! workspace builds on:
//!
//! * strongly-typed primitives ([`DocId`], [`ByteSize`], [`Timestamp`]) and
//!   the [`Request`] record,
//! * the five-way document-type classification of Lindemann & Waldhorst
//!   (DSN 2002) — [`DocumentType`] — derived from the HTTP `Content-Type`
//!   header with a file-extension fallback,
//! * HTTP status cacheability rules ([`status`]) and URL cacheability
//!   heuristics ([`cacheability`]) used to preprocess raw proxy logs,
//! * a parser for Squid native `access.log` lines ([`squid`]),
//! * a preprocessing pipeline ([`preprocess`]) turning raw log entries into
//!   a clean, cacheable-only request stream,
//! * a compact text format for persisting traces ([`mod@format`]),
//! * a dense struct-of-arrays view for the simulation hot path
//!   ([`DenseTrace`]) and the fx hash containers backing it
//!   ([`mod@fxhash`]).
//!
//! # Example
//!
//! ```
//! use webcache_trace::{DocumentType, Request, DocId, ByteSize, Timestamp};
//!
//! let req = Request::new(
//!     Timestamp::from_millis(1_000),
//!     DocId::new(42),
//!     DocumentType::Image,
//!     ByteSize::new(2_048),
//! );
//! assert_eq!(req.doc_type, DocumentType::Image);
//! assert_eq!(req.size.as_u64(), 2_048);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cacheability;
pub mod canonical;
pub mod clf;
pub mod dense;
pub mod doctype;
pub mod error;
pub mod format;
pub mod format_bin;
pub mod fxhash;
pub mod preprocess;
pub mod record;
pub mod squid;
pub mod status;
pub mod transform;
pub mod types;

pub use dense::DenseTrace;
pub use doctype::{DocumentType, TypeMap};
pub use error::TraceError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use record::{Request, Trace};
pub use status::HttpStatus;
pub use types::{ByteSize, DocId, Timestamp};
