//! Preprocessing raw log entries into a clean request stream.
//!
//! Following Section 2 of the paper, preprocessing
//!
//! 1. drops requests for dynamically generated URLs (`cgi`, `?` heuristics),
//! 2. keeps only responses whose HTTP status is cacheable
//!    (200, 203, 206, 300, 301, 302, 304),
//! 3. keeps only `GET` requests (the only method a shared cache serves),
//! 4. classifies each document by `Content-Type`, falling back to the URL
//!    extension,
//! 5. canonicalizes URLs (host case, default ports, fragments,
//!    directory indexes) and interns them into dense [`DocId`]s,
//! 6. normalizes timestamps so the first retained request is at time zero.
//!
//! For `304 Not Modified` responses the logged size covers only headers;
//! the preprocessor substitutes the last known size of the document so that
//! byte-hit accounting stays meaningful, dropping 304s for never-before-seen
//! documents.

use std::collections::HashMap;

use crate::cacheability::is_cacheable_url;
use crate::canonical::canonicalize;
use crate::doctype::DocumentType;
use crate::record::{Request, Trace};
use crate::squid::LogEntry;
use crate::status::HttpStatus;
use crate::types::{ByteSize, DocId, Timestamp};

/// Counters describing what preprocessing did, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Entries in the raw input.
    pub input: usize,
    /// Dropped: dynamic URL heuristics.
    pub dropped_dynamic: usize,
    /// Dropped: uncacheable HTTP status.
    pub dropped_status: usize,
    /// Dropped: non-GET method.
    pub dropped_method: usize,
    /// Dropped: 304 for a document never seen with a body.
    pub dropped_unsized: usize,
    /// Requests in the output trace.
    pub output: usize,
}

/// Preprocesses raw Squid log entries into a [`Trace`].
///
/// Returns the trace together with [`PreprocessStats`] describing the
/// filtering. Entries must be in arrival order; the output preserves it.
///
/// ```
/// use webcache_trace::{preprocess::preprocess, squid::parse_log};
///
/// let log = "\
/// 100.000 5 c TCP_MISS/200 900 GET http://e.de/a.gif - DIRECT/- image/gif
/// 100.500 5 c TCP_MISS/404 300 GET http://e.de/missing - DIRECT/- -
/// 101.000 5 c TCP_HIT/200 900 GET http://e.de/a.gif - NONE/- image/gif
/// ";
/// let entries = parse_log(log).unwrap();
/// let (trace, stats) = preprocess(&entries);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(stats.dropped_status, 1);
/// assert_eq!(trace.distinct_documents(), 1);
/// ```
pub fn preprocess(entries: &[LogEntry]) -> (Trace, PreprocessStats) {
    let mut stats = PreprocessStats {
        input: entries.len(),
        ..PreprocessStats::default()
    };
    let mut interner: HashMap<String, DocId> = HashMap::new();
    let mut last_size: HashMap<DocId, ByteSize> = HashMap::new();
    let mut trace = Trace::with_capacity(entries.len());
    let mut origin: Option<Timestamp> = None;

    for entry in entries {
        if !entry.method.eq_ignore_ascii_case("GET") {
            stats.dropped_method += 1;
            continue;
        }
        if !is_cacheable_url(&entry.url) {
            stats.dropped_dynamic += 1;
            continue;
        }
        if !entry.status.is_cacheable() {
            stats.dropped_status += 1;
            continue;
        }

        let next_id = DocId::new(interner.len() as u64);
        let doc = *interner.entry(canonicalize(&entry.url)).or_insert(next_id);

        let size = if entry.status == HttpStatus::NOT_MODIFIED {
            // A 304 transfers no body; account the validated document's
            // last known size, as the study's byte counts are body bytes.
            match last_size.get(&doc) {
                Some(&s) => s,
                None => {
                    stats.dropped_unsized += 1;
                    continue;
                }
            }
        } else {
            last_size.insert(doc, entry.size);
            entry.size
        };

        let doc_type = DocumentType::classify(entry.content_type.as_deref(), &entry.url);
        let origin = *origin.get_or_insert(entry.timestamp);
        trace.push(Request::new(
            Timestamp::from_millis(entry.timestamp.millis_since(origin)),
            doc,
            doc_type,
            size,
        ));
    }

    stats.output = trace.len();
    (trace, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squid::parse_log;

    fn entry(ts: &str, status: u16, size: u64, method: &str, url: &str, ct: &str) -> String {
        format!("{ts} 5 client TCP_MISS/{status} {size} {method} {url} - DIRECT/- {ct}")
    }

    #[test]
    fn filters_dynamic_urls() {
        let log = [
            entry(
                "100.0",
                200,
                10,
                "GET",
                "http://e.de/cgi-bin/x",
                "text/html",
            ),
            entry(
                "101.0",
                200,
                10,
                "GET",
                "http://e.de/x.html?q=1",
                "text/html",
            ),
            entry("102.0", 200, 10, "GET", "http://e.de/x.html", "text/html"),
        ]
        .join("\n");
        let (trace, stats) = preprocess(&parse_log(&log).unwrap());
        assert_eq!(trace.len(), 1);
        assert_eq!(stats.dropped_dynamic, 2);
    }

    #[test]
    fn filters_methods_and_statuses() {
        let log = [
            entry("100.0", 200, 10, "POST", "http://e.de/a.html", "text/html"),
            entry("101.0", 500, 10, "GET", "http://e.de/a.html", "text/html"),
            entry("102.0", 203, 10, "GET", "http://e.de/a.html", "text/html"),
        ]
        .join("\n");
        let (trace, stats) = preprocess(&parse_log(&log).unwrap());
        assert_eq!(trace.len(), 1);
        assert_eq!(stats.dropped_method, 1);
        assert_eq!(stats.dropped_status, 1);
        assert_eq!(stats.output, 1);
        assert_eq!(stats.input, 3);
    }

    #[test]
    fn interns_urls_to_dense_ids() {
        let log = [
            entry("100.0", 200, 10, "GET", "http://e.de/a.html", "text/html"),
            entry("101.0", 200, 20, "GET", "http://e.de/b.gif", "image/gif"),
            entry("102.0", 200, 10, "GET", "http://e.de/a.html", "text/html"),
        ]
        .join("\n");
        let (trace, _) = preprocess(&parse_log(&log).unwrap());
        let ids: Vec<u64> = trace.iter().map(|r| r.doc.as_u64()).collect();
        assert_eq!(ids, vec![0, 1, 0]);
        assert_eq!(trace.requests()[1].doc_type, DocumentType::Image);
    }

    #[test]
    fn timestamps_are_rebased_to_zero() {
        let log = [
            entry(
                "994176000.500",
                200,
                10,
                "GET",
                "http://e.de/a.html",
                "text/html",
            ),
            entry(
                "994176001.500",
                200,
                10,
                "GET",
                "http://e.de/a.html",
                "text/html",
            ),
        ]
        .join("\n");
        let (trace, _) = preprocess(&parse_log(&log).unwrap());
        assert_eq!(trace.requests()[0].timestamp, Timestamp::ZERO);
        assert_eq!(trace.requests()[1].timestamp.as_millis(), 1000);
    }

    #[test]
    fn not_modified_uses_last_known_size() {
        let log = [
            entry("100.0", 200, 4000, "GET", "http://e.de/a.html", "text/html"),
            entry("101.0", 304, 250, "GET", "http://e.de/a.html", "text/html"),
        ]
        .join("\n");
        let (trace, stats) = preprocess(&parse_log(&log).unwrap());
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.requests()[1].size.as_u64(), 4000);
        assert_eq!(stats.dropped_unsized, 0);
    }

    #[test]
    fn not_modified_without_history_is_dropped() {
        let log = entry("100.0", 304, 250, "GET", "http://e.de/a.html", "text/html");
        let (trace, stats) = preprocess(&parse_log(&log).unwrap());
        assert!(trace.is_empty());
        assert_eq!(stats.dropped_unsized, 1);
    }

    #[test]
    fn url_variants_intern_to_one_document() {
        let log = [
            entry(
                "100.0",
                200,
                10,
                "GET",
                "http://E.de:80/dir/index.html",
                "text/html",
            ),
            entry("101.0", 200, 10, "GET", "http://e.de/dir/", "text/html"),
        ]
        .join("\n");
        let (trace, _) = preprocess(&parse_log(&log).unwrap());
        assert_eq!(trace.distinct_documents(), 1, "canonical forms must unify");
    }

    #[test]
    fn classification_falls_back_to_extension() {
        let log = entry("100.0", 200, 10, "GET", "http://e.de/paper.pdf", "-");
        let (trace, _) = preprocess(&parse_log(&log).unwrap());
        assert_eq!(trace.requests()[0].doc_type, DocumentType::Application);
    }
}
