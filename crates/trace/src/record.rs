//! The request record and trace container.

use serde::{Deserialize, Serialize};

use crate::doctype::{DocumentType, TypeMap};
use crate::types::{ByteSize, DocId, Timestamp};

/// One cacheable request as seen by the proxy, after preprocessing.
///
/// `size` is the *transfer size*: the number of bytes the proxy sent for
/// this response. It can differ from the document's full size when the
/// client interrupted the transfer, and it changes when the origin server
/// modified the document — the simulator uses the per-document size history
/// to tell these cases apart (paper, Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// When the request arrived at the proxy.
    pub timestamp: Timestamp,
    /// The requested document.
    pub doc: DocId,
    /// Document class of the response.
    pub doc_type: DocumentType,
    /// Transfer size of the response.
    pub size: ByteSize,
}

impl Request {
    /// Creates a request record.
    pub const fn new(
        timestamp: Timestamp,
        doc: DocId,
        doc_type: DocumentType,
        size: ByteSize,
    ) -> Self {
        Request {
            timestamp,
            doc,
            doc_type,
            size,
        }
    }
}

/// An ordered stream of preprocessed requests.
///
/// `Trace` is a thin wrapper over `Vec<Request>` adding the aggregate
/// queries that the characterization and simulation layers need.
///
/// ```
/// use webcache_trace::{Trace, Request, Timestamp, DocId, DocumentType, ByteSize};
///
/// let mut trace = Trace::new();
/// trace.push(Request::new(Timestamp::ZERO, DocId::new(0), DocumentType::Html, ByteSize::new(100)));
/// trace.push(Request::new(Timestamp::from_millis(5), DocId::new(0), DocumentType::Html, ByteSize::new(100)));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.distinct_documents(), 1);
/// assert_eq!(trace.requested_bytes().as_u64(), 200);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            requests: Vec::with_capacity(n),
        }
    }

    /// Appends a request.
    pub fn push(&mut self, request: Request) {
        self.requests.push(request);
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace contains no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterates over the requests in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Number of distinct documents referenced by the trace.
    pub fn distinct_documents(&self) -> usize {
        let mut ids: Vec<u64> = self.requests.iter().map(|r| r.doc.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Total bytes transferred over all requests ("Requested Data").
    pub fn requested_bytes(&self) -> ByteSize {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Sum of the sizes of distinct documents ("Overall Size"), where a
    /// document's size is the largest transfer observed for it (partial
    /// transfers only ever shrink the observed value).
    pub fn overall_size(&self) -> ByteSize {
        self.document_sizes().into_iter().map(|(_, s)| s).sum()
    }

    /// The size of each distinct document: the maximum transfer size seen.
    pub fn document_sizes(&self) -> Vec<(DocId, ByteSize)> {
        let mut pairs: Vec<(DocId, ByteSize)> =
            self.requests.iter().map(|r| (r.doc, r.size)).collect();
        pairs.sort_unstable();
        pairs.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // `earlier` is kept; fold the max size into it.
                earlier.1 = earlier.1.max(later.1);
                true
            } else {
                false
            }
        });
        pairs
    }

    /// Number of requests per document type.
    pub fn requests_by_type(&self) -> TypeMap<u64> {
        let mut counts = TypeMap::default();
        for r in &self.requests {
            counts[r.doc_type] += 1;
        }
        counts
    }

    /// Transferred bytes per document type.
    pub fn requested_bytes_by_type(&self) -> TypeMap<ByteSize> {
        let mut bytes: TypeMap<ByteSize> = TypeMap::default();
        for r in &self.requests {
            bytes[r.doc_type] += r.size;
        }
        bytes
    }

    /// Splits the trace at a warm-up fraction: returns the index of the
    /// first request that counts towards the performance measures when the
    /// first `fraction` of the requests is used to fill the cache.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn warmup_boundary(&self, fraction: f64) -> usize {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warm-up fraction must be in [0, 1), got {fraction}"
        );
        (self.requests.len() as f64 * fraction).floor() as usize
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Trace {
            requests: iter.into_iter().collect(),
        }
    }
}

impl Extend<Request> for Trace {
    fn extend<I: IntoIterator<Item = Request>>(&mut self, iter: I) {
        self.requests.extend(iter);
    }
}

impl From<Vec<Request>> for Trace {
    fn from(requests: Vec<Request>) -> Self {
        Trace { requests }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(ts: u64, doc: u64, ty: DocumentType, size: u64) -> Request {
        Request::new(
            Timestamp::from_millis(ts),
            DocId::new(doc),
            ty,
            ByteSize::new(size),
        )
    }

    fn sample() -> Trace {
        vec![
            req(0, 1, DocumentType::Image, 100),
            req(1, 2, DocumentType::Html, 300),
            req(2, 1, DocumentType::Image, 80), // interrupted: smaller transfer
            req(3, 3, DocumentType::MultiMedia, 5_000),
            req(4, 2, DocumentType::Html, 300),
        ]
        .into()
    }

    #[test]
    fn counts_and_bytes() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.distinct_documents(), 3);
        assert_eq!(t.requested_bytes().as_u64(), 100 + 300 + 80 + 5_000 + 300);
    }

    #[test]
    fn overall_size_uses_max_transfer_per_doc() {
        let t = sample();
        // doc 1: max(100, 80) = 100; doc 2: 300; doc 3: 5000.
        assert_eq!(t.overall_size().as_u64(), 100 + 300 + 5_000);
    }

    #[test]
    fn document_sizes_are_deduped() {
        let t = sample();
        let sizes = t.document_sizes();
        assert_eq!(sizes.len(), 3);
        let doc1 = sizes.iter().find(|(d, _)| d.as_u64() == 1).unwrap();
        assert_eq!(doc1.1.as_u64(), 100);
    }

    #[test]
    fn per_type_breakdowns() {
        let t = sample();
        let reqs = t.requests_by_type();
        assert_eq!(reqs[DocumentType::Image], 2);
        assert_eq!(reqs[DocumentType::Html], 2);
        assert_eq!(reqs[DocumentType::MultiMedia], 1);
        assert_eq!(reqs[DocumentType::Application], 0);
        let bytes = t.requested_bytes_by_type();
        assert_eq!(bytes[DocumentType::Image].as_u64(), 180);
        assert_eq!(bytes[DocumentType::MultiMedia].as_u64(), 5_000);
    }

    #[test]
    fn warmup_boundary_floors() {
        let t = sample();
        assert_eq!(t.warmup_boundary(0.0), 0);
        assert_eq!(t.warmup_boundary(0.1), 0);
        assert_eq!(t.warmup_boundary(0.5), 2);
    }

    #[test]
    #[should_panic(expected = "warm-up fraction")]
    fn warmup_boundary_rejects_one() {
        let _ = sample().warmup_boundary(1.0);
    }

    #[test]
    fn collect_and_iterate() {
        let t: Trace = sample().into_iter().collect();
        assert_eq!(t.len(), 5);
        assert_eq!(t.iter().count(), 5);
        let mut t2 = Trace::new();
        t2.extend(t.iter().copied());
        assert_eq!(t2, t);
    }

    #[test]
    fn empty_trace_aggregates() {
        let t = Trace::new();
        assert_eq!(t.distinct_documents(), 0);
        assert_eq!(t.requested_bytes(), ByteSize::ZERO);
        assert_eq!(t.overall_size(), ByteSize::ZERO);
    }
}
