//! Parser for Squid native `access.log` lines.
//!
//! Both traces studied in the paper (NLANR RTP and DFN) were collected by
//! Squid-based proxies in this format. One line per request:
//!
//! ```text
//! timestamp elapsed client action/status size method URL ident hierarchy/from content-type
//! ```
//!
//! for example:
//!
//! ```text
//! 994176000.123   110 134.91.1.7 TCP_MISS/200 2342 GET http://example.de/logo.gif - DIRECT/10.0.0.1 image/gif
//! ```

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::status::HttpStatus;
use crate::types::{ByteSize, Timestamp};

/// One raw, parsed `access.log` entry (before preprocessing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Request completion time.
    pub timestamp: Timestamp,
    /// Time the transaction busied the cache, in milliseconds.
    pub elapsed_ms: u64,
    /// Client host (address string, kept verbatim).
    pub client: String,
    /// Squid result code, e.g. `TCP_HIT`, `TCP_MISS`.
    pub action: String,
    /// HTTP status of the reply.
    pub status: HttpStatus,
    /// Bytes delivered to the client (headers + body).
    pub size: ByteSize,
    /// HTTP request method.
    pub method: String,
    /// Requested URL, verbatim.
    pub url: String,
    /// Content type of the response, if logged (`-` becomes `None`).
    pub content_type: Option<String>,
}

/// Parses a single Squid native log line.
///
/// `line_no` is used only for error reporting.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] when the line has fewer than ten fields or
/// a numeric field does not parse.
///
/// ```
/// use webcache_trace::squid::parse_line;
///
/// let entry = parse_line(
///     "994176000.123 110 134.91.1.7 TCP_MISS/200 2342 GET http://e.de/a.gif - DIRECT/10.0.0.1 image/gif",
///     1,
/// ).unwrap();
/// assert_eq!(entry.status.code(), 200);
/// assert_eq!(entry.size.as_u64(), 2342);
/// assert_eq!(entry.content_type.as_deref(), Some("image/gif"));
/// ```
pub fn parse_line(line: &str, line_no: usize) -> Result<LogEntry, TraceError> {
    let mut fields = line.split_ascii_whitespace();
    let mut next = |name: &str| {
        fields
            .next()
            .ok_or_else(|| TraceError::parse(line_no, format!("missing field `{name}`")))
    };

    let ts_raw = next("timestamp")?;
    let timestamp = parse_timestamp(ts_raw)
        .ok_or_else(|| TraceError::parse(line_no, format!("bad timestamp `{ts_raw}`")))?;

    let elapsed_raw = next("elapsed")?;
    let elapsed_ms = elapsed_raw
        .parse::<i64>()
        .map_err(|_| TraceError::parse(line_no, format!("bad elapsed time `{elapsed_raw}`")))?
        .max(0) as u64;

    let client = next("client")?.to_owned();

    let action_status = next("action/status")?;
    let (action, status_str) = action_status.split_once('/').ok_or_else(|| {
        TraceError::parse(line_no, format!("bad action/status `{action_status}`"))
    })?;
    let status = status_str
        .parse::<u16>()
        .map(HttpStatus::new)
        .map_err(|_| TraceError::parse(line_no, format!("bad status `{status_str}`")))?;

    let size_raw = next("size")?;
    let size = size_raw
        .parse::<u64>()
        .map(ByteSize::new)
        .map_err(|_| TraceError::parse(line_no, format!("bad size `{size_raw}`")))?;

    let method = next("method")?.to_owned();
    let url = next("url")?.to_owned();
    let _ident = next("ident")?;
    let _hierarchy = next("hierarchy")?;
    let content_type = match fields.next() {
        None | Some("-") => None,
        Some(ct) => Some(ct.to_owned()),
    };

    Ok(LogEntry {
        timestamp,
        elapsed_ms,
        client,
        action: action.to_owned(),
        status,
        size,
        method,
        url,
        content_type,
    })
}

/// Parses every non-empty line of a Squid log.
///
/// # Errors
///
/// Fails on the first malformed line; use [`parse_log_lossy`] to skip
/// malformed lines instead.
pub fn parse_log(text: &str) -> Result<Vec<LogEntry>, TraceError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l, i + 1))
        .collect()
}

/// Parses a Squid log, silently dropping malformed lines.
///
/// Returns the parsed entries and the number of lines dropped.
pub fn parse_log_lossy(text: &str) -> (Vec<LogEntry>, usize) {
    let mut entries = Vec::new();
    let mut dropped = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, i + 1) {
            Ok(e) => entries.push(e),
            Err(_) => dropped += 1,
        }
    }
    (entries, dropped)
}

/// Formats an entry back into the Squid native log format.
///
/// `parse_line` ∘ `format_line` is the identity on the retained fields,
/// which the round-trip tests rely on.
pub fn format_line(entry: &LogEntry) -> String {
    format!(
        "{}.{:03} {} {} {}/{} {} {} {} - DIRECT/- {}",
        entry.timestamp.as_millis() / 1000,
        entry.timestamp.as_millis() % 1000,
        entry.elapsed_ms,
        entry.client,
        entry.action,
        entry.status.code(),
        entry.size.as_u64(),
        entry.method,
        entry.url,
        entry.content_type.as_deref().unwrap_or("-"),
    )
}

/// Parses a `seconds[.millis]` UNIX-style timestamp into a [`Timestamp`].
fn parse_timestamp(raw: &str) -> Option<Timestamp> {
    match raw.split_once('.') {
        Some((secs, frac)) => {
            let secs: u64 = secs.parse().ok()?;
            // Normalize the fractional part to exactly three digits. Only
            // ASCII digits are acceptable (and make the slice safe).
            if !frac.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let frac = if frac.len() >= 3 { &frac[..3] } else { frac };
            let mut millis: u64 = frac.parse().ok()?;
            for _ in frac.len()..3 {
                millis *= 10;
            }
            Some(Timestamp::from_millis(secs * 1000 + millis))
        }
        None => raw.parse::<u64>().ok().map(Timestamp::from_secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "994176000.123 110 134.91.1.7 TCP_MISS/200 2342 GET http://e.de/a.gif - DIRECT/10.0.0.1 image/gif";

    #[test]
    fn parses_all_fields() {
        let e = parse_line(LINE, 1).unwrap();
        assert_eq!(e.timestamp.as_millis(), 994_176_000_123);
        assert_eq!(e.elapsed_ms, 110);
        assert_eq!(e.client, "134.91.1.7");
        assert_eq!(e.action, "TCP_MISS");
        assert_eq!(e.status, HttpStatus::OK);
        assert_eq!(e.size.as_u64(), 2342);
        assert_eq!(e.method, "GET");
        assert_eq!(e.url, "http://e.de/a.gif");
        assert_eq!(e.content_type.as_deref(), Some("image/gif"));
    }

    #[test]
    fn missing_content_type_is_none() {
        let line = "100.000 5 c TCP_HIT/304 312 GET http://e.de/x.html - NONE/- -";
        let e = parse_line(line, 1).unwrap();
        assert_eq!(e.content_type, None);
        assert_eq!(e.status, HttpStatus::NOT_MODIFIED);
    }

    #[test]
    fn truncated_line_errors_with_field_name() {
        let err = parse_line("100.000 5 c TCP_HIT/304", 7).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 7"), "{msg}");
        assert!(msg.contains("size"), "{msg}");
    }

    #[test]
    fn bad_status_errors() {
        let line = "100.000 5 c TCP_HIT/abc 1 GET http://e.de/x - NONE/- -";
        assert!(parse_line(line, 1).is_err());
    }

    #[test]
    fn negative_elapsed_clamps_to_zero() {
        // Squid logs -1 for some aborted transactions.
        let line = "100.000 -1 c TCP_MISS/200 1 GET http://e.de/x - DIRECT/- -";
        assert_eq!(parse_line(line, 1).unwrap().elapsed_ms, 0);
    }

    #[test]
    fn timestamp_without_fraction() {
        let line = "100 5 c TCP_MISS/200 1 GET http://e.de/x - DIRECT/- -";
        assert_eq!(parse_line(line, 1).unwrap().timestamp.as_millis(), 100_000);
    }

    #[test]
    fn timestamp_short_fraction_is_padded() {
        assert_eq!(parse_timestamp("1.5").unwrap().as_millis(), 1_500);
        assert_eq!(parse_timestamp("1.05").unwrap().as_millis(), 1_050);
        assert_eq!(parse_timestamp("1.123456").unwrap().as_millis(), 1_123);
    }

    #[test]
    fn parse_log_collects_lines() {
        let text = format!("{LINE}\n\n{LINE}\n");
        let entries = parse_log(&text).unwrap();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn parse_log_lossy_skips_garbage() {
        let text = format!("{LINE}\nthis is not a log line\n{LINE}\n");
        let (entries, dropped) = parse_log_lossy(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn format_parse_roundtrip() {
        let e = parse_line(LINE, 1).unwrap();
        let reparsed = parse_line(&format_line(&e), 1).unwrap();
        assert_eq!(e.timestamp, reparsed.timestamp);
        assert_eq!(e.status, reparsed.status);
        assert_eq!(e.size, reparsed.size);
        assert_eq!(e.url, reparsed.url);
        assert_eq!(e.content_type, reparsed.content_type);
    }
}
