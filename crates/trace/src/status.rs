//! HTTP status codes and response cacheability.
//!
//! Following the preprocessing rules of the paper (Section 2), responses
//! with status codes 200 (OK), 203 (Non-Authoritative Information),
//! 206 (Partial Content), 300 (Multiple Choices), 301 (Moved Permanently),
//! 302 (Found) and 304 (Not Modified) are considered cacheable, in line
//! with Arlitt et al., Cao & Irani, and Jin & Bestavros.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An HTTP response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HttpStatus(u16);

impl HttpStatus {
    /// 200 OK.
    pub const OK: HttpStatus = HttpStatus(200);
    /// 203 Non-Authoritative Information.
    pub const NON_AUTHORITATIVE: HttpStatus = HttpStatus(203);
    /// 206 Partial Content.
    pub const PARTIAL_CONTENT: HttpStatus = HttpStatus(206);
    /// 300 Multiple Choices.
    pub const MULTIPLE_CHOICES: HttpStatus = HttpStatus(300);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: HttpStatus = HttpStatus(301);
    /// 302 Found.
    pub const FOUND: HttpStatus = HttpStatus(302);
    /// 304 Not Modified.
    pub const NOT_MODIFIED: HttpStatus = HttpStatus(304);

    /// Creates a status from its numeric code.
    #[inline]
    pub const fn new(code: u16) -> Self {
        HttpStatus(code)
    }

    /// The numeric code.
    #[inline]
    pub const fn code(self) -> u16 {
        self.0
    }

    /// Whether a response with this status is considered cacheable by the
    /// study's preprocessing rules.
    ///
    /// ```
    /// use webcache_trace::HttpStatus;
    /// assert!(HttpStatus::OK.is_cacheable());
    /// assert!(HttpStatus::new(304).is_cacheable());
    /// assert!(!HttpStatus::new(404).is_cacheable());
    /// assert!(!HttpStatus::new(500).is_cacheable());
    /// ```
    pub const fn is_cacheable(self) -> bool {
        matches!(self.0, 200 | 203 | 206 | 300 | 301 | 302 | 304)
    }

    /// Whether this code signals a successful full-body response
    /// (2xx class).
    pub const fn is_success(self) -> bool {
        self.0 >= 200 && self.0 < 300
    }
}

impl fmt::Display for HttpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for HttpStatus {
    fn from(code: u16) -> Self {
        HttpStatus(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheable_set_matches_paper() {
        let cacheable = [200u16, 203, 206, 300, 301, 302, 304];
        for code in cacheable {
            assert!(
                HttpStatus::new(code).is_cacheable(),
                "{code} must be cacheable"
            );
        }
        for code in [
            100u16, 201, 204, 303, 305, 400, 401, 403, 404, 407, 500, 502, 503,
        ] {
            assert!(
                !HttpStatus::new(code).is_cacheable(),
                "{code} must not be cacheable"
            );
        }
    }

    #[test]
    fn success_class() {
        assert!(HttpStatus::OK.is_success());
        assert!(HttpStatus::PARTIAL_CONTENT.is_success());
        assert!(!HttpStatus::NOT_MODIFIED.is_success());
        assert!(!HttpStatus::new(404).is_success());
    }

    #[test]
    fn display_and_conversion() {
        assert_eq!(HttpStatus::from(204).code(), 204);
        assert_eq!(HttpStatus::OK.to_string(), "200");
    }
}
