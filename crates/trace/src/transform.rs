//! Trace transformations: filtering, slicing, sampling and merging.
//!
//! The characterization and simulation layers often want a *view* of a
//! trace — one document type, a time window, a sampled thinning for a
//! quick look, or several traces merged into one proxy stream. These
//! transforms all return new [`Trace`]s in arrival order.

use crate::doctype::{DocumentType, TypeMap};
use crate::record::{Request, Trace};
use crate::types::Timestamp;

/// Keeps only requests for documents of `doc_type`.
pub fn filter_by_type(trace: &Trace, doc_type: DocumentType) -> Trace {
    trace
        .iter()
        .filter(|r| r.doc_type == doc_type)
        .copied()
        .collect()
}

/// Splits a trace into its per-type substreams.
pub fn split_by_type(trace: &Trace) -> TypeMap<Trace> {
    let mut out: TypeMap<Trace> = TypeMap::from_fn(|_| Trace::new());
    for r in trace {
        out[r.doc_type].push(*r);
    }
    out
}

/// Keeps requests with `start ≤ timestamp < end`.
///
/// # Panics
///
/// Panics when `start > end`.
pub fn time_window(trace: &Trace, start: Timestamp, end: Timestamp) -> Trace {
    assert!(start <= end, "window start must not exceed its end");
    trace
        .iter()
        .filter(|r| r.timestamp >= start && r.timestamp < end)
        .copied()
        .collect()
}

/// The first `n` requests.
pub fn head(trace: &Trace, n: usize) -> Trace {
    trace.iter().take(n).copied().collect()
}

/// Keeps every `k`-th request (systematic sampling, starting with the
/// first). `k = 1` is the identity.
///
/// Note that sampling *thins re-references*: hit rates measured on a
/// sampled trace underestimate the original's. Use for quick structural
/// looks, not for simulation results.
///
/// # Panics
///
/// Panics when `k` is zero.
pub fn sample_every(trace: &Trace, k: usize) -> Trace {
    assert!(k > 0, "sampling interval must be positive");
    trace.iter().step_by(k).copied().collect()
}

/// Merges traces into one stream ordered by timestamp (stable for equal
/// timestamps: earlier input trace first). Document-id spaces are
/// remapped to avoid collisions: the `i`-th input's ids are offset by
/// the number of distinct id values in earlier inputs... (kept verbatim;
/// callers merging traces from one generator seed family should remap
/// beforehand if ids overlap intentionally).
pub fn merge(traces: &[&Trace]) -> Trace {
    // Offset each trace's ids by the running max+1 of previous traces so
    // the merged stream has disjoint document populations.
    let mut offset = 0u64;
    let mut tagged: Vec<Request> = Vec::new();
    for t in traces {
        let max_id = t.iter().map(|r| r.doc.as_u64()).max();
        for r in *t {
            let mut r = *r;
            r.doc = crate::types::DocId::new(r.doc.as_u64() + offset);
            tagged.push(r);
        }
        if let Some(m) = max_id {
            offset += m + 1;
        }
    }
    tagged.sort_by_key(|r| r.timestamp);
    tagged.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ByteSize, DocId};

    fn req(ts: u64, doc: u64, ty: DocumentType) -> Request {
        Request::new(
            Timestamp::from_millis(ts),
            DocId::new(doc),
            ty,
            ByteSize::new(100),
        )
    }

    fn sample() -> Trace {
        vec![
            req(0, 1, DocumentType::Image),
            req(10, 2, DocumentType::Html),
            req(20, 1, DocumentType::Image),
            req(30, 3, DocumentType::MultiMedia),
            req(40, 2, DocumentType::Html),
        ]
        .into()
    }

    #[test]
    fn filter_keeps_only_requested_type() {
        let t = filter_by_type(&sample(), DocumentType::Image);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|r| r.doc_type == DocumentType::Image));
    }

    #[test]
    fn split_partitions_completely() {
        let t = sample();
        let parts = split_by_type(&t);
        let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, t.len());
        assert_eq!(parts[DocumentType::Html].len(), 2);
        assert_eq!(parts[DocumentType::Application].len(), 0);
    }

    #[test]
    fn window_is_half_open() {
        let t = time_window(
            &sample(),
            Timestamp::from_millis(10),
            Timestamp::from_millis(30),
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0].timestamp.as_millis(), 10);
        assert_eq!(t.requests()[1].timestamp.as_millis(), 20);
    }

    #[test]
    fn head_and_sampling() {
        assert_eq!(head(&sample(), 3).len(), 3);
        assert_eq!(head(&sample(), 100).len(), 5);
        let every2 = sample_every(&sample(), 2);
        assert_eq!(every2.len(), 3);
        assert_eq!(every2.requests()[1].timestamp.as_millis(), 20);
        assert_eq!(sample_every(&sample(), 1), sample());
    }

    #[test]
    fn merge_interleaves_and_remaps_ids() {
        let a: Trace = vec![
            req(0, 0, DocumentType::Image),
            req(20, 0, DocumentType::Image),
        ]
        .into();
        let b: Trace = vec![req(10, 0, DocumentType::Html)].into();
        let merged = merge(&[&a, &b]);
        assert_eq!(merged.len(), 3);
        let ts: Vec<u64> = merged.iter().map(|r| r.timestamp.as_millis()).collect();
        assert_eq!(ts, vec![0, 10, 20]);
        // b's doc 0 must not collide with a's doc 0.
        assert_eq!(merged.distinct_documents(), 2);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge(&[]).is_empty());
        let empty = Trace::new();
        assert!(merge(&[&empty, &empty]).is_empty());
    }

    #[test]
    #[should_panic(expected = "window start")]
    fn inverted_window_rejected() {
        let _ = time_window(
            &sample(),
            Timestamp::from_millis(30),
            Timestamp::from_millis(10),
        );
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_sampling_rejected() {
        let _ = sample_every(&sample(), 0);
    }
}
