//! Strongly-typed primitives used throughout the workspace.
//!
//! Newtypes keep byte counts, document identifiers and timestamps from being
//! mixed up in the large parameter lists that trace-driven simulation tends
//! to produce.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Identifier of a distinct web document (a canonicalized URL).
///
/// Identifiers are dense `u64`s assigned by the trace producer (the Squid
/// parser interns URLs; the synthetic generator numbers its population).
///
/// ```
/// use webcache_trace::DocId;
/// let id = DocId::new(7);
/// assert_eq!(id.as_u64(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(u64);

impl DocId {
    /// Creates a document identifier from a raw index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        DocId(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

impl From<u64> for DocId {
    fn from(raw: u64) -> Self {
        DocId(raw)
    }
}

/// A size or amount of data in bytes.
///
/// Supports saturating arithmetic through the standard operator traits and
/// human-readable display:
///
/// ```
/// use webcache_trace::ByteSize;
/// let a = ByteSize::new(1024);
/// let b = ByteSize::from_kib(1);
/// assert_eq!(a, b);
/// assert_eq!((a + b).as_u64(), 2048);
/// assert_eq!(ByteSize::from_mib(3).to_string(), "3.00 MiB");
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a byte size from a raw byte count.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a byte size from kibibytes (1024 bytes).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a byte size from mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a byte size from gibibytes.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the size as a floating point byte count (for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns the size in kibibytes as a float.
    #[inline]
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns the size in gibibytes as a float.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the size by a non-negative scale factor, rounding to the
    /// nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn scale(self, factor: f64) -> ByteSize {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        ByteSize((self.0 as f64 * factor).round() as u64)
    }

    /// Returns true if this is zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let b = self.0 as f64;
        if b >= GIB {
            write!(f, "{:.2} GiB", b / GIB)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b / MIB)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    #[inline]
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |acc, x| acc + x)
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

/// A point in (trace) time, stored with millisecond resolution.
///
/// Only ordering and differences matter to the simulator; the origin is
/// whatever the trace producer chose.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (trace origin).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from milliseconds since the trace origin.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp from whole seconds since the trace origin.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1000)
    }

    /// Milliseconds since the trace origin.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the trace origin, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Milliseconds elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn millis_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl From<u64> for Timestamp {
    fn from(ms: u64) -> Self {
        Timestamp(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_roundtrip() {
        assert_eq!(DocId::new(99).as_u64(), 99);
        assert_eq!(DocId::from(5), DocId::new(5));
        assert_eq!(DocId::new(3).to_string(), "doc#3");
    }

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(2).as_u64(), 2048);
        assert_eq!(ByteSize::from_mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn byte_size_arithmetic_saturates() {
        let a = ByteSize::new(10);
        let b = ByteSize::new(30);
        assert_eq!((b - a).as_u64(), 20);
        assert_eq!((a - b).as_u64(), 0, "subtraction saturates at zero");
        assert_eq!(
            ByteSize::new(u64::MAX) + ByteSize::new(1),
            ByteSize::new(u64::MAX)
        );
    }

    #[test]
    fn byte_size_sum() {
        let total: ByteSize = (1..=4u64).map(ByteSize::new).sum();
        assert_eq!(total.as_u64(), 10);
    }

    #[test]
    fn byte_size_display_units() {
        assert_eq!(ByteSize::new(512).to_string(), "512 B");
        assert_eq!(ByteSize::from_kib(1).to_string(), "1.00 KiB");
        assert_eq!(ByteSize::from_mib(5).to_string(), "5.00 MiB");
        assert_eq!(ByteSize::from_gib(2).to_string(), "2.00 GiB");
    }

    #[test]
    fn byte_size_scale_rounds() {
        assert_eq!(ByteSize::new(100).scale(0.5).as_u64(), 50);
        assert_eq!(ByteSize::new(3).scale(0.5).as_u64(), 2, "1.5 rounds to 2");
        assert_eq!(ByteSize::new(100).scale(0.0).as_u64(), 0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn byte_size_scale_rejects_negative() {
        let _ = ByteSize::new(1).scale(-1.0);
    }

    #[test]
    fn timestamp_conversions() {
        let t = Timestamp::from_secs(2);
        assert_eq!(t.as_millis(), 2000);
        assert_eq!(t.as_secs_f64(), 2.0);
        assert_eq!(t.to_string(), "2.000s");
        assert_eq!(Timestamp::from_millis(2500).millis_since(t), 500);
        assert_eq!(t.millis_since(Timestamp::from_millis(9000)), 0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ByteSize::new(1) < ByteSize::new(2));
        assert!(Timestamp::from_millis(1) < Timestamp::from_millis(2));
        assert!(DocId::new(1) < DocId::new(2));
    }
}
