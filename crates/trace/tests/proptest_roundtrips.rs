//! Property tests for the trace substrate: format round-trips, parser
//! totality and classification stability.

use proptest::prelude::*;

use webcache_trace::format;
use webcache_trace::squid;
use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

fn arb_doc_type() -> impl Strategy<Value = DocumentType> {
    prop::sample::select(DocumentType::ALL.to_vec())
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u64..10_000_000,
        0u64..100_000,
        arb_doc_type(),
        0u64..1_000_000_000,
    )
        .prop_map(|(ts, doc, ty, size)| {
            Request::new(
                Timestamp::from_millis(ts),
                DocId::new(doc),
                ty,
                ByteSize::new(size),
            )
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_request(), 0..200).prop_map(Trace::from)
}

proptest! {
    /// write ∘ read is the identity on traces.
    #[test]
    fn format_roundtrip(trace in arb_trace()) {
        let text = format::to_string(&trace);
        let back = format::from_str(&text).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Aggregates are internally consistent for any trace.
    #[test]
    fn trace_aggregates_are_consistent(trace in arb_trace()) {
        let per_type_reqs: u64 = trace.requests_by_type().iter().map(|(_, &c)| c).sum();
        prop_assert_eq!(per_type_reqs, trace.len() as u64);

        let per_type_bytes: u64 = trace
            .requested_bytes_by_type()
            .iter()
            .map(|(_, b)| b.as_u64())
            .sum();
        prop_assert_eq!(per_type_bytes, trace.requested_bytes().as_u64());

        prop_assert_eq!(trace.document_sizes().len(), trace.distinct_documents());
        // Overall size (max per doc) never exceeds requested bytes summed
        // over more requests than documents... but always ≤ sum of all
        // transfer maxima, and 0 iff empty.
        prop_assert_eq!(trace.overall_size().is_zero(), trace.is_empty() ||
            trace.iter().all(|r| r.size.is_zero()));
    }

    /// The Squid parser never panics on arbitrary input lines.
    #[test]
    fn squid_parser_is_total(line in "\\PC{0,200}") {
        let _ = squid::parse_line(&line, 1);
    }

    /// format_line ∘ parse_line preserves the retained fields.
    #[test]
    fn squid_roundtrip(
        ts in 0u64..2_000_000_000_000,
        elapsed in 0u64..100_000,
        status in prop::sample::select(vec![200u16, 203, 206, 300, 301, 302, 304, 404, 500]),
        size in 0u64..1_000_000_000,
        url in "http://[a-z]{1,10}\\.de/[a-zA-Z0-9_.-]{0,30}",
        mime in prop::option::of(prop::sample::select(vec![
            "text/html", "image/gif", "audio/mpeg", "application/pdf", "model/vrml",
        ])),
    ) {
        let entry = squid::LogEntry {
            timestamp: Timestamp::from_millis(ts),
            elapsed_ms: elapsed,
            client: "10.0.0.1".to_owned(),
            action: "TCP_MISS".to_owned(),
            status: status.into(),
            size: ByteSize::new(size),
            method: "GET".to_owned(),
            url,
            content_type: mime.map(str::to_owned),
        };
        let line = squid::format_line(&entry);
        let parsed = squid::parse_line(&line, 1).unwrap();
        prop_assert_eq!(entry, parsed);
    }

    /// Classification is total and stable: any (mime, url) pair maps to
    /// exactly one type, and MIME information takes precedence.
    #[test]
    fn classification_is_total(
        mime in prop::option::of("[a-z]{1,12}/[a-z0-9.+-]{1,16}"),
        url in "\\PC{0,100}",
    ) {
        let ty = DocumentType::classify(mime.as_deref(), &url);
        prop_assert!(DocumentType::ALL.contains(&ty));
        if let Some(m) = &mime {
            if let Some(from_mime) = DocumentType::from_mime(m) {
                prop_assert_eq!(ty, from_mime, "mime must win over the URL");
            }
        }
    }

    /// Warm-up boundaries bound the measured region correctly.
    #[test]
    fn warmup_boundary_in_range(trace in arb_trace(), frac in 0.0f64..0.999) {
        let b = trace.warmup_boundary(frac);
        prop_assert!(b <= trace.len());
        // The boundary grows monotonically with the fraction.
        let b2 = trace.warmup_boundary((frac / 2.0).min(0.998));
        prop_assert!(b2 <= b);
    }
}

mod canonical_props {
    use proptest::prelude::*;
    use webcache_trace::canonical::canonicalize;
    use webcache_trace::format_bin;
    use webcache_trace::Trace;

    proptest! {
        /// Canonicalization is idempotent and total.
        #[test]
        fn canonicalize_is_idempotent(url in "\\PC{0,120}") {
            let once = canonicalize(&url);
            let twice = canonicalize(&once);
            prop_assert_eq!(once, twice);
        }

        /// Host-case and default-port variants of the same http URL
        /// always unify.
        #[test]
        fn http_variants_unify(
            host in "[a-zA-Z][a-zA-Z0-9.-]{0,20}",
            path in "(/[a-zA-Z0-9._-]{0,12}){0,4}",
        ) {
            let a = canonicalize(&format!("http://{host}{path}"));
            let b = canonicalize(&format!("HTTP://{}:80{path}", host.to_ascii_uppercase()));
            prop_assert_eq!(a, b);
        }

        /// The binary trace format round-trips arbitrary traces.
        #[test]
        fn binary_roundtrip(trace in super::arb_trace()) {
            let bytes = format_bin::to_bytes(&trace);
            let back: Trace = format_bin::from_bytes(&bytes).unwrap();
            prop_assert_eq!(trace, back);
        }

        /// Corrupting any single header byte of a non-empty encoding is
        /// either detected as an error or yields a different trace —
        /// never a silent wrong success that equals the original with a
        /// different header.
        #[test]
        fn binary_header_corruption_is_detected(
            trace in super::arb_trace(),
            byte in 0usize..8,
            flip in 1u8..255,
        ) {
            let mut bytes = format_bin::to_bytes(&trace);
            bytes[byte] ^= flip;
            match format_bin::from_bytes(&bytes) {
                Err(_) => {}
                Ok(back) => {
                    // Flipping reserved bytes (5..8) is tolerated; the
                    // payload must still round-trip exactly.
                    prop_assert!((5..8).contains(&byte));
                    prop_assert_eq!(back, trace);
                }
            }
        }

        /// The CLF parser never panics on arbitrary input.
        #[test]
        fn clf_parser_is_total(line in "\\PC{0,200}") {
            let _ = webcache_trace::clf::parse_line(&line, 1);
        }
    }
}
