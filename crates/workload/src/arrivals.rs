//! Request arrival-time models.
//!
//! The simulator is order-driven, but exported traces (and any latency
//! or rate analysis on them) want realistic *timestamps*. This module
//! provides arrival processes that map request indexes to arrival times:
//!
//! * [`ArrivalModel::Uniform`] — fixed spacing (the generator's default);
//! * [`ArrivalModel::Poisson`] — exponential inter-arrivals at a constant
//!   rate;
//! * [`ArrivalModel::Diurnal`] — a Poisson process whose rate follows
//!   the day/night cycle every proxy trace exhibits (a sinusoid between
//!   a night-time floor and the daytime peak).

use rand::Rng;
use serde::{Deserialize, Serialize};

use webcache_trace::{Timestamp, Trace};

/// An arrival process assigning timestamps to a request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Fixed spacing of the given number of milliseconds.
    Uniform {
        /// Milliseconds between consecutive requests.
        spacing_ms: u64,
    },
    /// Poisson arrivals at `rate_per_sec` requests per second.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_sec: f64,
    },
    /// Poisson arrivals with a sinusoidal diurnal rate:
    /// `rate(t) = base + amplitude · (1 + sin(2πt/period)) / 2`.
    Diurnal {
        /// Night-time floor rate, requests per second.
        base_per_sec: f64,
        /// Peak-to-floor rate difference, requests per second.
        amplitude_per_sec: f64,
        /// Cycle length in seconds (86 400 for a day).
        period_secs: f64,
    },
}

impl ArrivalModel {
    /// A day/night cycle with the given floor and peak rates.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < floor ≤ peak`.
    pub fn daily(floor_per_sec: f64, peak_per_sec: f64) -> Self {
        assert!(
            floor_per_sec > 0.0 && peak_per_sec >= floor_per_sec,
            "need 0 < floor ≤ peak"
        );
        ArrivalModel::Diurnal {
            base_per_sec: floor_per_sec,
            amplitude_per_sec: peak_per_sec - floor_per_sec,
            period_secs: 86_400.0,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive spacings, rates or periods.
    pub fn validate(&self) {
        match *self {
            ArrivalModel::Uniform { spacing_ms } => {
                assert!(spacing_ms > 0, "spacing must be positive");
            }
            ArrivalModel::Poisson { rate_per_sec } => {
                assert!(
                    rate_per_sec.is_finite() && rate_per_sec > 0.0,
                    "rate must be positive"
                );
            }
            ArrivalModel::Diurnal {
                base_per_sec,
                amplitude_per_sec,
                period_secs,
            } => {
                assert!(
                    base_per_sec.is_finite() && base_per_sec > 0.0,
                    "base rate must be positive"
                );
                assert!(
                    amplitude_per_sec.is_finite() && amplitude_per_sec >= 0.0,
                    "amplitude must be non-negative"
                );
                assert!(
                    period_secs.is_finite() && period_secs > 0.0,
                    "period must be positive"
                );
            }
        }
    }

    /// The instantaneous rate at time `t_secs` (requests per second).
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        match *self {
            ArrivalModel::Uniform { spacing_ms } => 1000.0 / spacing_ms as f64,
            ArrivalModel::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalModel::Diurnal {
                base_per_sec,
                amplitude_per_sec,
                period_secs,
            } => {
                let phase = (t_secs / period_secs) * std::f64::consts::TAU;
                base_per_sec + amplitude_per_sec * (1.0 + phase.sin()) / 2.0
            }
        }
    }

    /// Draws the next inter-arrival gap (seconds) given the current time.
    fn next_gap_secs<R: Rng + ?Sized>(&self, rng: &mut R, now_secs: f64) -> f64 {
        match *self {
            ArrivalModel::Uniform { spacing_ms } => spacing_ms as f64 / 1000.0,
            _ => {
                // Exponential at the current instantaneous rate (a
                // first-order thinning approximation; exact for Poisson).
                let rate = self.rate_at(now_secs).max(1e-9);
                let u: f64 = 1.0 - rng.gen::<f64>();
                -u.ln() / rate
            }
        }
    }

    /// Returns a copy of `trace` with timestamps re-assigned from this
    /// model, deterministically from `seed`. Request order is preserved.
    pub fn retime(&self, trace: &Trace, seed: u64) -> Trace {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        self.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now_secs = 0.0f64;
        trace
            .iter()
            .map(|r| {
                let mut r = *r;
                r.timestamp = Timestamp::from_millis((now_secs * 1000.0).round() as u64);
                now_secs += self.next_gap_secs(&mut rng, now_secs);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use webcache_trace::{ByteSize, DocId, DocumentType, Request};

    fn flat_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| {
                Request::new(
                    Timestamp::ZERO,
                    DocId::new(i % 5),
                    DocumentType::Html,
                    ByteSize::new(100),
                )
            })
            .collect()
    }

    #[test]
    fn uniform_spacing_is_exact() {
        let model = ArrivalModel::Uniform { spacing_ms: 40 };
        let t = model.retime(&flat_trace(10), 1);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.timestamp.as_millis(), i as u64 * 40);
        }
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let model = ArrivalModel::Poisson { rate_per_sec: 50.0 };
        let n = 20_000;
        let t = model.retime(&flat_trace(n), 2);
        let span_secs = t.requests().last().unwrap().timestamp.as_secs_f64();
        let rate = (n - 1) as f64 / span_secs;
        assert!((rate / 50.0 - 1.0).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn diurnal_rate_oscillates_between_floor_and_peak() {
        let model = ArrivalModel::daily(5.0, 45.0);
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for h in 0..24 {
            let r = model.rate_at(h as f64 * 3600.0);
            min = min.min(r);
            max = max.max(r);
        }
        assert!((5.0 - 1e-9..10.0).contains(&min), "min = {min}");
        assert!(max <= 45.0 + 1e-9 && max > 40.0, "max = {max}");
    }

    #[test]
    fn diurnal_retime_shows_density_variation() {
        // One simulated day of requests; the busiest hour must be far
        // denser than the quietest hour.
        let model = ArrivalModel::Diurnal {
            base_per_sec: 1.0,
            amplitude_per_sec: 20.0,
            period_secs: 3_600.0, // compress a "day" into an hour
        };
        let t = model.retime(&flat_trace(80_000), 3);
        let mut per_bucket = [0u64; 12];
        for r in &t {
            let bucket = ((r.timestamp.as_secs_f64() / 300.0) as usize).min(11);
            per_bucket[bucket] += 1;
        }
        // Compare only fully covered buckets: drop the trailing partial
        // bucket where the stream ran out.
        let last_full = per_bucket.iter().rposition(|&c| c > 0).unwrap();
        let full = &per_bucket[..last_full];
        let busiest = *full.iter().max().unwrap();
        let quietest = *full.iter().min().unwrap();
        assert!(
            busiest as f64 > 2.5 * quietest.max(1) as f64,
            "{per_bucket:?}"
        );
    }

    #[test]
    fn retime_preserves_order_and_payload() {
        let model = ArrivalModel::Poisson { rate_per_sec: 10.0 };
        let original = flat_trace(100);
        let t = model.retime(&original, 4);
        assert_eq!(t.len(), original.len());
        for (a, b) in t.iter().zip(original.iter()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.size, b.size);
        }
        for w in t.requests().windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn retime_is_deterministic() {
        let model = ArrivalModel::daily(2.0, 30.0);
        let t = flat_trace(500);
        assert_eq!(model.retime(&t, 9), model.retime(&t, 9));
    }

    #[test]
    fn gap_sampler_uses_current_rate() {
        let model = ArrivalModel::Poisson {
            rate_per_sec: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000)
            .map(|_| model.next_gap_secs(&mut rng, 0.0))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.01).abs() < 0.001, "mean gap = {mean}");
    }

    #[test]
    #[should_panic(expected = "floor ≤ peak")]
    fn daily_rejects_inverted_rates() {
        let _ = ArrivalModel::daily(10.0, 5.0);
    }
}
