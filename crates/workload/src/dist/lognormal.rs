//! Log-normal distribution, used for document sizes.

use rand::Rng;

/// A log-normal distribution: `exp(μ + σZ)` with `Z ~ N(0, 1)`.
///
/// Sampling uses the Box–Muller transform over `rand`'s uniform source.
///
/// Web document sizes within one content type are well described by a
/// log-normal body; the paper's Tables 4/5 report exactly the mean,
/// median and CoV this distribution is parameterized by:
/// `median = e^μ` and `mean = e^(μ + σ²/2)`, hence
/// [`LogNormal::from_mean_median`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given location μ and scale σ ≥ 0.
    ///
    /// # Panics
    ///
    /// Panics when μ is not finite or σ is negative/not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "μ must be finite");
        assert!(sigma.is_finite() && sigma >= 0.0, "σ must be ≥ 0");
        LogNormal { mu, sigma }
    }

    /// Calibrates a log-normal from its mean and median:
    /// `μ = ln median`, `σ = sqrt(2 ln(mean/median))`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < median ≤ mean`.
    ///
    /// ```
    /// use webcache_workload::dist::LogNormal;
    /// let d = LogNormal::from_mean_median(10_000.0, 2_000.0);
    /// assert!((d.median() - 2_000.0).abs() < 1e-9);
    /// assert!((d.mean() - 10_000.0).abs() < 1e-6);
    /// ```
    pub fn from_mean_median(mean: f64, median: f64) -> Self {
        assert!(
            median > 0.0 && mean >= median,
            "need 0 < median ≤ mean (got mean={mean}, median={median})"
        );
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        LogNormal { mu, sigma }
    }

    /// The distribution median `e^μ`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution mean `e^(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// The coefficient of variation `sqrt(e^(σ²) − 1)`.
    pub fn cov(&self) -> f64 {
        ((self.sigma * self.sigma).exp() - 1.0).sqrt()
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_roundtrip() {
        let d = LogNormal::from_mean_median(83_000.0, 12_000.0);
        assert!((d.median() - 12_000.0).abs() < 1e-6);
        assert!((d.mean() - 83_000.0).abs() < 1e-4);
        assert!(d.cov() > 2.0, "heavy mean/median ratio implies high CoV");
    }

    #[test]
    fn equal_mean_median_is_degenerate() {
        let d = LogNormal::from_mean_median(5.0, 5.0);
        assert_eq!(d.cov(), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((d.sample(&mut rng) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sample_statistics_converge() {
        let d = LogNormal::from_mean_median(10_000.0, 3_000.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[n / 2];
        assert!((mean / 10_000.0 - 1.0).abs() < 0.05, "mean = {mean}");
        assert!((median / 3_000.0 - 1.0).abs() < 0.05, "median = {median}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    #[should_panic(expected = "median ≤ mean")]
    fn mean_below_median_rejected() {
        let _ = LogNormal::from_mean_median(1.0, 2.0);
    }

    #[test]
    fn samples_are_positive() {
        let d = LogNormal::new(0.0, 3.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
