//! Probability distributions used by the workload generator.
//!
//! Implemented from scratch on top of `rand`'s uniform source so the
//! workspace needs no statistics dependency:
//!
//! * [`Zipf`] — bounded Zipf-like rank-frequency law (popularity),
//! * [`LogNormal`] — document sizes (calibrated from mean and median),
//! * [`BoundedPareto`] — heavy-tailed alternative size model,
//! * [`BoundedPowerLaw`] — discrete power-law inter-reference gaps
//!   (temporal correlation).

mod lognormal;
mod pareto;
mod powerlaw;
mod zipf;

pub use lognormal::LogNormal;
pub use pareto::BoundedPareto;
pub use powerlaw::BoundedPowerLaw;
pub use zipf::Zipf;
