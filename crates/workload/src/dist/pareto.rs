//! Bounded (truncated) Pareto distribution — heavy-tailed alternative
//! size model.

use rand::Rng;

/// A Pareto distribution truncated to `[lo, hi]`:
/// `P(X > x) ∝ x^−shape` within the bounds.
///
/// Crovella's web-performance survey (cited by the paper) attributes the
/// high variability of web document sizes to Pareto tails; this model is
/// offered as an alternative to [`LogNormal`](super::LogNormal) for
/// tail-sensitivity experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    shape: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto with tail index `shape > 0` over
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `shape > 0` (all finite).
    pub fn new(shape: f64, lo: f64, hi: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi,
            "need 0 < lo < hi (got lo={lo}, hi={hi})"
        );
        BoundedPareto { shape, lo, hi }
    }

    /// The tail index.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The support bounds `(lo, hi)`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.shape, self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 limit: mean = ln(h/l) · l·h / (h − l).
            l * h / (h - l) * (h / l).ln()
        } else {
            let la = l.powf(a);
            (la / (1.0 - (l / h).powf(a))) * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }

    /// Draws one value via inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let (a, l, h) = (self.shape, self.lo, self.hi);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        // Inverse of the truncated CDF.
        (la - u * (la - ha)).powf(-1.0 / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let d = BoundedPareto::new(1.2, 100.0, 1_000_000.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((100.0..=1_000_000.0).contains(&x));
        }
    }

    #[test]
    fn sample_mean_matches_formula() {
        let d = BoundedPareto::new(1.5, 1_000.0, 10_000_000.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = d.mean();
        assert!(
            (mean / expected - 1.0).abs() < 0.05,
            "sample mean {mean}, formula {expected}"
        );
    }

    #[test]
    fn tail_is_heavier_for_smaller_shape() {
        let mut rng = StdRng::seed_from_u64(13);
        let heavy = BoundedPareto::new(0.8, 100.0, 1e9);
        let light = BoundedPareto::new(2.5, 100.0, 1e9);
        let n = 50_000;
        let p99 = |d: &BoundedPareto, rng: &mut StdRng| {
            let mut xs: Vec<f64> = (0..n).map(|_| d.sample(rng)).collect();
            xs.sort_by(|a, b| a.total_cmp(b));
            xs[n * 99 / 100]
        };
        assert!(p99(&heavy, &mut rng) > 10.0 * p99(&light, &mut rng));
    }

    #[test]
    fn accessors() {
        let d = BoundedPareto::new(1.1, 2.0, 8.0);
        assert_eq!(d.shape(), 1.1);
        assert_eq!(d.bounds(), (2.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn inverted_bounds_rejected() {
        let _ = BoundedPareto::new(1.0, 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_rejected() {
        let _ = BoundedPareto::new(0.0, 1.0, 2.0);
    }
}
