//! Discrete bounded power law — inter-reference gap distribution.

use rand::Rng;

/// A discrete power law over `1..=max`: `P(n) ∝ n^−β` (approximately).
///
/// This is the generative counterpart of the temporal-correlation law the
/// paper measures: the probability that a document is requested again
/// after `n` intervening requests is proportional to `n^−β` for equally
/// popular documents.
///
/// Sampling draws from the continuous density `x^−β` on `[1, max+1)` by
/// inverse CDF and floors the result — `O(1)` per sample with no lookup
/// table, and the log-log slope (the only property the study depends on)
/// is preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPowerLaw {
    beta: f64,
    max: u64,
}

impl BoundedPowerLaw {
    /// Creates a power law with exponent `beta > 0` over `1..=max`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite and `max ≥ 1`.
    pub fn new(beta: f64, max: u64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "β must be positive and finite, got {beta}"
        );
        assert!(max >= 1, "max gap must be at least 1");
        BoundedPowerLaw { beta, max }
    }

    /// The exponent β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The largest producible gap.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Draws one gap in `1..=max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let hi = (self.max + 1) as f64;
        let x = if (self.beta - 1.0).abs() < 1e-9 {
            // β = 1: F(x) = ln x / ln hi  ⇒  x = hi^u.
            hi.powf(u)
        } else {
            // F(x) = (x^(1−β) − 1) / (hi^(1−β) − 1).
            let e = 1.0 - self.beta;
            (1.0 + u * (hi.powf(e) - 1.0)).powf(1.0 / e)
        };
        (x.floor() as u64).clamp(1, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Measures the realized log-log slope of a gap sample using base-2
    /// bucket densities (mirror of the estimator in webcache-stats).
    fn realized_slope(samples: &[u64]) -> f64 {
        let mut buckets = [0u64; 40];
        for &g in samples {
            buckets[(63 - g.max(1).leading_zeros()) as usize] += 1;
        }
        let total = samples.len() as f64;
        let pts: Vec<(f64, f64, f64)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let width = (1u64 << b) as f64;
                (
                    (1.5 * width).ln(),
                    (c as f64 / (total * width)).ln(),
                    c as f64,
                )
            })
            .collect();
        let wsum: f64 = pts.iter().map(|p| p.2).sum();
        let mx = pts.iter().map(|p| p.0 * p.2).sum::<f64>() / wsum;
        let my = pts.iter().map(|p| p.1 * p.2).sum::<f64>() / wsum;
        let sxy: f64 = pts.iter().map(|p| p.2 * (p.0 - mx) * (p.1 - my)).sum();
        let sxx: f64 = pts.iter().map(|p| p.2 * (p.0 - mx).powi(2)).sum();
        sxy / sxx
    }

    #[test]
    fn samples_stay_in_bounds() {
        let d = BoundedPowerLaw::new(1.5, 1000);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let g = d.sample(&mut rng);
            assert!((1..=1000).contains(&g));
        }
    }

    #[test]
    fn realized_slope_matches_beta() {
        let mut rng = StdRng::seed_from_u64(4);
        for beta in [0.6, 1.0, 1.5, 2.0] {
            let d = BoundedPowerLaw::new(beta, (1 << 14) - 1);
            let samples: Vec<u64> = (0..60_000).map(|_| d.sample(&mut rng)).collect();
            let slope = -realized_slope(&samples);
            assert!((slope - beta).abs() < 0.25, "β = {beta}, realized {slope}");
        }
    }

    #[test]
    fn larger_beta_means_shorter_gaps() {
        let mut rng = StdRng::seed_from_u64(6);
        let short = BoundedPowerLaw::new(2.0, 10_000);
        let long = BoundedPowerLaw::new(0.6, 10_000);
        let mean = |d: &BoundedPowerLaw, rng: &mut StdRng| {
            (0..20_000).map(|_| d.sample(rng)).sum::<u64>() as f64 / 20_000.0
        };
        assert!(mean(&short, &mut rng) * 5.0 < mean(&long, &mut rng));
    }

    #[test]
    fn max_one_always_returns_one() {
        let d = BoundedPowerLaw::new(1.0, 1);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn accessors() {
        let d = BoundedPowerLaw::new(0.9, 77);
        assert_eq!(d.beta(), 0.9);
        assert_eq!(d.max(), 77);
    }

    #[test]
    #[should_panic(expected = "β must be positive")]
    fn non_positive_beta_rejected() {
        let _ = BoundedPowerLaw::new(-1.0, 10);
    }

    #[test]
    #[should_panic(expected = "max gap")]
    fn zero_max_rejected() {
        let _ = BoundedPowerLaw::new(1.0, 0);
    }
}
