//! Bounded Zipf-like distribution over ranks `1..=n`.

use rand::Rng;

/// A Zipf-like law: `P(rank = ρ) ∝ ρ^−α` for ρ in `1..=n`.
///
/// Sampling uses inverse-CDF lookup with binary search over a precomputed
/// cumulative table — `O(n)` construction, `O(log n)` per sample,
/// numerically exact for any α ≥ 0 (α = 0 degenerates to the uniform
/// distribution).
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use webcache_workload::dist::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[i]` = P(rank ≤ i+1).
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `alpha` is negative or not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf exponent must be finite and non-negative, got {alpha}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over an empty support (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of the given rank (1-based).
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of `1..=n`.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&rank), "rank out of range");
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of elements < u, i.e. the
        // 0-based index of the first cdf entry ≥ u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (1..=50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_follows_power_law() {
        let z = Zipf::new(1000, 1.2);
        let ratio = z.pmf(1) / z.pmf(10);
        assert!((ratio - 10f64.powf(1.2)).abs() / ratio < 1e-9);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 1..=10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0u64; 21];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [1usize, 2, 5, 10, 20] {
            let observed = counts[r] as f64 / n as f64;
            let expected = z.pmf(r);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 1);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_rejected() {
        let _ = Zipf::new(10, -0.5);
    }
}
