//! The trace generator.
//!
//! Turns a [`WorkloadProfile`] into a concrete request stream in four
//! deterministic passes:
//!
//! 1. **Popularity** — every distinct document receives one request (so
//!    the distinct-document count of Table 1 is met exactly); the
//!    remaining per-type request budget is distributed by Zipf sampling
//!    with the type's slope α.
//! 2. **Placement** — each document's references are laid out on the
//!    continuous position axis with power-law gaps of slope β
//!    (see [`temporal`](crate::temporal)).
//! 3. **Merge** — all references are sorted by position into one stream.
//! 4. **Transfer sizes** — per-request sizes are derived from the
//!    document's size, injecting origin-server *modifications* (size
//!    change < 5%) and client-side *interrupted transfers* (≥ 5%
//!    shortfall) at the profile's rates, matching the simulator's
//!    detection rules (paper, Section 4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace};

use crate::dist::{BoundedPowerLaw, Zipf};
use crate::profiles::WorkloadProfile;
use crate::temporal::place_references;

/// Deterministic trace generator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
}

/// One reference before transfer-size assignment.
#[derive(Debug, Clone, Copy)]
struct PendingRef {
    position: f64,
    doc: u32,
}

impl TraceGenerator {
    /// Creates a generator for `profile`.
    ///
    /// # Panics
    ///
    /// Panics when the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile) -> Self {
        profile.validate();
        TraceGenerator { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates the trace. The same `(profile, seed)` pair always yields
    /// the identical trace.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_requests = self.profile.total_requests();
        let horizon = total_requests as f64;
        let max_gap = ((total_requests as f64 * self.profile.max_gap_fraction) as u64).max(64);

        let total_docs = self.profile.total_documents() as usize;
        let mut doc_type: Vec<DocumentType> = Vec::with_capacity(total_docs);
        let mut doc_size: Vec<u64> = Vec::with_capacity(total_docs);
        let mut refs: Vec<PendingRef> = Vec::with_capacity(total_requests as usize);

        for (ty, tp) in self.profile.types.iter() {
            if tp.distinct_documents == 0 {
                continue;
            }
            let base = doc_type.len() as u32;
            let n = tp.distinct_documents as usize;

            // Pass 1: popularity. One guaranteed request per document plus
            // Zipf-distributed extras.
            let mut counts = vec![1u64; n];
            if tp.requests > tp.distinct_documents && n > 1 {
                let zipf = Zipf::new(n, tp.alpha);
                for _ in 0..(tp.requests - tp.distinct_documents) {
                    counts[zipf.sample(&mut rng) - 1] += 1;
                }
            } else if n == 1 {
                counts[0] = tp.requests;
            }

            // Pass 1.5: sizes, rank-coupled to popularity. Real traces
            // show small documents to be disproportionately popular
            // (navigation icons vs one-shot downloads); the coupling
            // strength is the profile's size_popularity_correlation.
            let sizes = assign_sizes(&mut rng, tp, &counts);

            // Pass 2: placement with per-type temporal correlation.
            let gaps = BoundedPowerLaw::new(tp.beta, max_gap);
            for (i, &count) in counts.iter().enumerate() {
                let doc = base + i as u32;
                doc_type.push(ty);
                doc_size.push(sizes[i]);
                for position in place_references(&mut rng, count, horizon, &gaps) {
                    refs.push(PendingRef { position, doc });
                }
            }
        }

        // Pass 3: merge into one stream.
        refs.sort_unstable_by(|a, b| a.position.total_cmp(&b.position).then(a.doc.cmp(&b.doc)));

        // Pass 4: transfer sizes with modifications and interrupts.
        let mut seen = vec![false; doc_type.len()];
        let mut trace = Trace::with_capacity(refs.len());
        for (index, r) in refs.iter().enumerate() {
            let doc = r.doc as usize;
            let ty = doc_type[doc];
            let tp = &self.profile.types[ty];
            let (min_size, _) = tp.size_model.bounds();

            if seen[doc] && rng.gen::<f64>() < tp.modification_rate {
                // Origin-server modification: perturb the document size by
                // at least one byte but strictly less than 5%, the
                // signature the simulator's detector looks for.
                let size = doc_size[doc];
                let delta = ((size as f64 * rng.gen_range(0.005..0.045)) as u64).max(1);
                doc_size[doc] = if rng.gen::<bool>() {
                    size.saturating_add(delta)
                } else {
                    size.saturating_sub(delta).max(min_size.max(1))
                };
            }
            let size = doc_size[doc];
            let transfer = if seen[doc] && rng.gen::<f64>() < tp.interrupt_rate {
                // Client interrupt: deliver only 5–80% of the document,
                // guaranteeing a ≥ 5% shortfall.
                ((size as f64 * rng.gen_range(0.05..0.80)) as u64).max(1)
            } else {
                size
            };
            seen[doc] = true;

            trace.push(Request::new(
                Timestamp::from_millis(index as u64 * 40),
                DocId::new(r.doc as u64),
                ty,
                ByteSize::new(transfer),
            ));
        }
        trace
    }
}

/// Draws one size per document and couples size rank to popularity rank
/// with the profile's `size_popularity_correlation` ρ.
///
/// A Gaussian-copula-style blend: each document receives a latent score
/// `ρ·popularity_percentile + (1−ρ)·U`, documents are sorted by score and
/// the ascending-sorted sizes are assigned in that order. ρ = 0 leaves
/// sizes independent of popularity; ρ = 1 makes the most popular document
/// exactly the smallest. The marginal size distribution is untouched.
fn assign_sizes<R: Rng + ?Sized>(
    rng: &mut R,
    tp: &crate::profiles::TypeProfile,
    counts: &[u64],
) -> Vec<u64> {
    let n = counts.len();
    let mut sizes: Vec<u64> = (0..n).map(|_| tp.size_model.sample(rng).as_u64()).collect();
    let rho = tp.size_popularity_correlation;
    if rho <= 0.0 || n < 2 {
        return sizes;
    }
    sizes.sort_unstable();

    // Popularity rank per document (0 = most requested).
    let mut by_pop: Vec<u32> = (0..n as u32).collect();
    by_pop.sort_unstable_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]));
    let mut pop_rank = vec![0u32; n];
    for (rank, &doc) in by_pop.iter().enumerate() {
        pop_rank[doc as usize] = rank as u32;
    }

    let mut scored: Vec<(f64, u32)> = (0..n as u32)
        .map(|doc| {
            let pct = pop_rank[doc as usize] as f64 / (n - 1) as f64;
            (rho * pct + (1.0 - rho) * rng.gen::<f64>(), doc)
        })
        .collect();
    scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut assigned = vec![0u64; n];
    for (j, &(_, doc)) in scored.iter().enumerate() {
        assigned[doc as usize] = sizes[j];
    }
    assigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::TypeProfile;
    use crate::sizes::SizeModel;

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile::dfn().scaled(1.0 / 1024.0)
    }

    #[test]
    fn determinism() {
        let p = small_profile();
        let a = p.build_trace(99);
        let b = p.build_trace(99);
        assert_eq!(a, b);
        let c = p.build_trace(100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn request_and_document_budgets_are_exact() {
        let p = small_profile();
        let t = p.build_trace(1);
        assert_eq!(t.len() as u64, p.total_requests());
        assert_eq!(t.distinct_documents() as u64, p.total_documents());
    }

    #[test]
    fn per_type_request_counts_match_profile() {
        let p = small_profile();
        let t = p.build_trace(2);
        let by_type = t.requests_by_type();
        for (ty, tp) in p.types.iter() {
            assert_eq!(by_type[ty], tp.requests, "{ty}");
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = small_profile().build_trace(3);
        for w in t.requests().windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn transfer_sizes_are_positive() {
        let t = small_profile().build_trace(4);
        assert!(t.iter().all(|r| r.size.as_u64() >= 1));
    }

    #[test]
    fn interrupts_shrink_and_modifications_nudge() {
        // A one-document profile with aggressive rates so both effects
        // appear in a short trace.
        let mut p = WorkloadProfile::empty("synthetic");
        p.types[DocumentType::MultiMedia] = TypeProfile {
            distinct_documents: 1,
            requests: 400,
            alpha: 0.5,
            beta: 1.0,
            size_model: SizeModel::log_normal(1_000_000.0, 1_000_000.0, 1000, 10_000_000),
            modification_rate: 0.2,
            interrupt_rate: 0.2,
            size_popularity_correlation: 0.0,
        };
        let t = p.build_trace(5);
        let sizes: Vec<u64> = t.iter().map(|r| r.size.as_u64()).collect();
        let mut small_changes = 0;
        let mut large_changes = 0;
        for w in sizes.windows(2) {
            let (a, b) = (w[0] as f64, w[1] as f64);
            let rel = (b - a).abs() / a.max(b);
            if rel == 0.0 {
                continue;
            } else if rel < 0.05 {
                small_changes += 1;
            } else {
                large_changes += 1;
            }
        }
        assert!(small_changes > 0, "expected modification events");
        assert!(large_changes > 0, "expected interrupted transfers");
    }

    #[test]
    fn single_type_profile_generates_only_that_type() {
        let mut p = WorkloadProfile::empty("html-only");
        p.types[DocumentType::Html] = TypeProfile {
            distinct_documents: 50,
            requests: 300,
            alpha: 0.8,
            beta: 0.9,
            size_model: SizeModel::log_normal(8_000.0, 3_000.0, 30, 1 << 20),
            modification_rate: 0.0,
            interrupt_rate: 0.0,
            size_popularity_correlation: 0.0,
        };
        let t = p.build_trace(6);
        assert_eq!(t.len(), 300);
        assert!(t.iter().all(|r| r.doc_type == DocumentType::Html));
        // No modifications/interrupts: a document's size never varies.
        let mut by_doc = std::collections::HashMap::new();
        for r in &t {
            let e = by_doc.entry(r.doc).or_insert(r.size);
            assert_eq!(*e, r.size, "size must be stable without mod/interrupt");
        }
    }

    #[test]
    fn popular_documents_receive_more_requests() {
        let mut p = WorkloadProfile::empty("zipf-check");
        p.types[DocumentType::Image] = TypeProfile {
            distinct_documents: 1000,
            requests: 3_000,
            alpha: 1.0,
            beta: 0.8,
            size_model: SizeModel::log_normal(4_000.0, 2_000.0, 30, 1 << 20),
            modification_rate: 0.0,
            interrupt_rate: 0.0,
            size_popularity_correlation: 0.0,
        };
        let t = p.build_trace(7);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            *counts.entry(r.doc.as_u64()).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let ones = counts.values().filter(|&&c| c == 1).count();
        assert!(max > 100, "head document should dominate, max = {max}");
        assert!(ones > 200, "tail should contain one-timers, ones = {ones}");
    }
}
