//! # webcache-workload
//!
//! Synthetic web proxy workload generation, substituting for the
//! unavailable DFN and RTP traces of Lindemann & Waldhorst (DSN 2002).
//!
//! A [`WorkloadProfile`] describes a workload by exactly the
//! characteristics the paper measures in its Section 2:
//!
//! * per-document-type population and request budget (Tables 1–3),
//! * per-type document-size distributions matched to mean/median/CoV
//!   (Tables 4–5),
//! * per-type popularity slope **α** (Zipf-like rank-frequency law),
//! * per-type temporal-correlation slope **β** (power-law inter-reference
//!   gaps),
//! * document-modification and interrupted-transfer rates (Section 4.1).
//!
//! [`TraceGenerator`] turns a profile into a concrete
//! [`Trace`](webcache_trace::Trace), deterministically from a seed. The
//! calibrated [`WorkloadProfile::dfn`] and [`WorkloadProfile::rtp`]
//! profiles reproduce the two traces of the study; `scaled` shrinks them
//! proportionally for laptop-scale experiments.
//!
//! ```
//! use webcache_workload::WorkloadProfile;
//!
//! let trace = WorkloadProfile::dfn()
//!     .scaled(1.0 / 2048.0)
//!     .build_trace(7);
//! assert!(trace.len() > 1000);
//! ```
//!
//! The probability distributions are implemented in-repo ([`dist`]) to
//! keep the workspace's dependency set minimal.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod dist;
pub mod generator;
pub mod mix;
pub mod profiles;
pub mod sizes;
pub mod stream;
pub mod temporal;

pub use arrivals::ArrivalModel;
pub use generator::TraceGenerator;
pub use mix::{blend, shift_mix};
pub use profiles::{TypeProfile, WorkloadProfile};
pub use sizes::SizeModel;
pub use stream::WorkloadStream;
