//! Profile mixing and future-workload scenarios.
//!
//! The paper's introduction *conjectures that in future workloads the
//! percentage of requests to [multi-media and application] documents will
//! be substantially larger than in current request streams*, and argues
//! that understanding per-type behaviour matters precisely because
//! workload composition is shifting. This module makes that conjecture
//! executable:
//!
//! * [`shift_mix`] re-weights a profile's per-type request/document
//!   budgets towards a target mix while keeping the total volume, size
//!   models and locality parameters fixed;
//! * [`WorkloadProfile::future`] is a ready-made "rich-media future"
//!   scenario derived from the DFN profile;
//! * [`blend`] interpolates between two profiles (e.g. DFN → RTP),
//!   which is how the sensitivity sweep in the `future_workload` bench
//!   walks between observed and conjectured workloads.

use webcache_trace::{DocumentType, TypeMap};

use crate::profiles::{TypeProfile, WorkloadProfile};

/// Linearly interpolates two numbers.
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Re-weights `profile` so that each type's share of total *requests*
/// approaches `target_request_share` (fractions summing to ~1) while the
/// total request and document budgets stay unchanged.
///
/// Per-type request/document ratios (average reference counts), size
/// models, α, β and the modification/interrupt rates are preserved — the
/// composition changes, the per-type behaviour does not. `t` in `[0, 1]`
/// controls how far to move (0 = unchanged, 1 = exactly the target mix).
///
/// # Panics
///
/// Panics when `t` is outside `[0, 1]` or the target shares do not sum
/// to approximately 1.
pub fn shift_mix(
    profile: &WorkloadProfile,
    target_request_share: &TypeMap<f64>,
    t: f64,
) -> WorkloadProfile {
    assert!((0.0..=1.0).contains(&t), "blend factor must be in [0, 1]");
    let sum: f64 = target_request_share.iter().map(|(_, &v)| v).sum();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "target request shares must sum to 1, got {sum}"
    );

    let total_requests = profile.total_requests() as f64;
    let shifted = TypeMap::from_fn(|ty| {
        let tp = &profile.types[ty];
        if tp.requests == 0 && target_request_share[ty] == 0.0 {
            return *tp;
        }
        let current_share = tp.requests as f64 / total_requests;
        let new_share = lerp(current_share, target_request_share[ty], t);
        let new_requests = (total_requests * new_share).round().max(0.0) as u64;
        if new_requests == 0 {
            return TypeProfile {
                distinct_documents: 0,
                requests: 0,
                ..*tp
            };
        }
        // Keep the type's average reference count, hence its locality.
        let refs_per_doc = if tp.distinct_documents > 0 {
            tp.requests as f64 / tp.distinct_documents as f64
        } else {
            1.5
        };
        let new_docs = ((new_requests as f64 / refs_per_doc).round() as u64).clamp(1, new_requests);
        TypeProfile {
            distinct_documents: new_docs,
            requests: new_requests,
            ..*tp
        }
    });

    WorkloadProfile {
        name: format!("{}+mix{t:.2}", profile.name),
        types: shifted,
        max_gap_fraction: profile.max_gap_fraction,
    }
}

/// Interpolates every numeric knob of two profiles (request/document
/// budgets, α, β, rates, coupling) at blend factor `t ∈ [0, 1]`; size
/// models are taken from `a` below `t = 0.5` and from `b` above.
///
/// # Panics
///
/// Panics when `t` is outside `[0, 1]`.
pub fn blend(a: &WorkloadProfile, b: &WorkloadProfile, t: f64) -> WorkloadProfile {
    assert!((0.0..=1.0).contains(&t), "blend factor must be in [0, 1]");
    let types = TypeMap::from_fn(|ty| {
        let (pa, pb) = (&a.types[ty], &b.types[ty]);
        let distinct = lerp(
            pa.distinct_documents as f64,
            pb.distinct_documents as f64,
            t,
        )
        .round() as u64;
        let requests =
            (lerp(pa.requests as f64, pb.requests as f64, t).round() as u64).max(distinct);
        TypeProfile {
            distinct_documents: distinct,
            requests,
            alpha: lerp(pa.alpha, pb.alpha, t),
            beta: lerp(pa.beta, pb.beta, t),
            size_model: if t < 0.5 {
                pa.size_model
            } else {
                pb.size_model
            },
            modification_rate: lerp(pa.modification_rate, pb.modification_rate, t),
            interrupt_rate: lerp(pa.interrupt_rate, pb.interrupt_rate, t),
            size_popularity_correlation: lerp(
                pa.size_popularity_correlation,
                pb.size_popularity_correlation,
                t,
            ),
        }
    });
    WorkloadProfile {
        name: format!("{}~{}@{t:.2}", a.name, b.name),
        types,
        max_gap_fraction: lerp(a.max_gap_fraction, b.max_gap_fraction, t),
    }
}

impl WorkloadProfile {
    /// The paper's conjectured future workload: a DFN-like stream in
    /// which multi-media and application requests have grown to 5 % and
    /// 12 % of all requests (≈35× and ≈2.7× today's shares) at the
    /// expense of images, reflecting "the rapidly increasing popularity
    /// of digital audio and video documents and the sustained growth of
    /// application documents".
    pub fn future() -> WorkloadProfile {
        let dfn = WorkloadProfile::dfn();
        let mut target: TypeMap<f64> = TypeMap::default();
        target[DocumentType::Image] = 0.58;
        target[DocumentType::Html] = 0.245;
        target[DocumentType::MultiMedia] = 0.05;
        target[DocumentType::Application] = 0.12;
        target[DocumentType::Other] = 0.005;
        let mut profile = shift_mix(&dfn, &target, 1.0);
        profile.name = "FUTURE".to_owned();
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_mix_hits_target_shares() {
        let dfn = WorkloadProfile::dfn().scaled(1.0 / 128.0);
        let mut target: TypeMap<f64> = TypeMap::default();
        target[DocumentType::Image] = 0.50;
        target[DocumentType::Html] = 0.30;
        target[DocumentType::MultiMedia] = 0.10;
        target[DocumentType::Application] = 0.08;
        target[DocumentType::Other] = 0.02;
        let shifted = shift_mix(&dfn, &target, 1.0);
        shifted.validate();
        let total = shifted.total_requests() as f64;
        for (ty, &want) in target.iter() {
            let got = shifted.types[ty].requests as f64 / total;
            assert!((got - want).abs() < 0.01, "{ty}: {got} vs {want}");
        }
        // Volume approximately preserved.
        let ratio = shifted.total_requests() as f64 / dfn.total_requests() as f64;
        assert!((ratio - 1.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn shift_mix_zero_t_is_identity_mix() {
        let dfn = WorkloadProfile::dfn().scaled(1.0 / 128.0);
        let target = TypeMap::from_fn(|_| 0.2);
        let same = shift_mix(&dfn, &target, 0.0);
        for (ty, tp) in same.types.iter() {
            assert_eq!(tp.requests, dfn.types[ty].requests, "{ty}");
        }
    }

    #[test]
    fn shift_mix_preserves_reference_density() {
        let dfn = WorkloadProfile::dfn().scaled(1.0 / 128.0);
        let mut target: TypeMap<f64> = TypeMap::default();
        target[DocumentType::MultiMedia] = 0.5;
        target[DocumentType::Image] = 0.5;
        let shifted = shift_mix(&dfn, &target, 1.0);
        let density = |tp: &TypeProfile| tp.requests as f64 / tp.distinct_documents as f64;
        let before = density(&dfn.types[DocumentType::MultiMedia]);
        let after = density(&shifted.types[DocumentType::MultiMedia]);
        assert!((before - after).abs() < 0.05, "{before} vs {after}");
    }

    #[test]
    fn future_profile_is_rich_media() {
        let f = WorkloadProfile::future();
        f.validate();
        let total = f.total_requests() as f64;
        let mm_share = f.types[DocumentType::MultiMedia].requests as f64 / total;
        let app_share = f.types[DocumentType::Application].requests as f64 / total;
        assert!((mm_share - 0.05).abs() < 0.005, "mm share = {mm_share}");
        assert!((app_share - 0.12).abs() < 0.01, "app share = {app_share}");
        // Size models and locality inherited from DFN.
        assert_eq!(
            f.types[DocumentType::MultiMedia].beta,
            WorkloadProfile::dfn().types[DocumentType::MultiMedia].beta
        );
    }

    #[test]
    fn blend_endpoints_match_inputs() {
        let dfn = WorkloadProfile::dfn();
        let rtp = WorkloadProfile::rtp();
        let at0 = blend(&dfn, &rtp, 0.0);
        let at1 = blend(&dfn, &rtp, 1.0);
        for ty in DocumentType::ALL {
            assert_eq!(at0.types[ty].requests, dfn.types[ty].requests);
            assert_eq!(at1.types[ty].requests, rtp.types[ty].requests);
            assert_eq!(at0.types[ty].alpha, dfn.types[ty].alpha);
            assert_eq!(at1.types[ty].beta, rtp.types[ty].beta);
        }
    }

    #[test]
    fn blend_midpoint_is_between() {
        let dfn = WorkloadProfile::dfn();
        let rtp = WorkloadProfile::rtp();
        let mid = blend(&dfn, &rtp, 0.5);
        mid.validate();
        let ty = DocumentType::Html;
        let (lo, hi) = (
            dfn.types[ty].requests.min(rtp.types[ty].requests),
            dfn.types[ty].requests.max(rtp.types[ty].requests),
        );
        assert!((lo..=hi).contains(&mid.types[ty].requests));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn shift_mix_rejects_bad_target() {
        let target = TypeMap::from_fn(|_| 0.5);
        let _ = shift_mix(&WorkloadProfile::dfn(), &target, 1.0);
    }

    #[test]
    #[should_panic(expected = "blend factor")]
    fn blend_rejects_out_of_range_t() {
        let _ = blend(&WorkloadProfile::dfn(), &WorkloadProfile::rtp(), 1.5);
    }
}
