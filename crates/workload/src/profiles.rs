//! Calibrated workload profiles.
//!
//! [`WorkloadProfile::dfn`] and [`WorkloadProfile::rtp`] encode the two
//! traces of the study through the characteristics reported in its
//! Section 2. Exact table cells lost to the available copy of the paper
//! are calibrated from the quantities stated in prose (see DESIGN.md
//! section 2 for the full derivation); the *relationships* that drive the
//! evaluation — which type is popularity-skewed, which is temporally
//! correlated, which dominates bytes — are all preserved:
//!
//! * images: many small documents, steep popularity slope α, weakest
//!   temporal correlation β;
//! * HTML: small documents, intermediate α and β;
//! * multi media: very few, very large documents, flat α, strongest β;
//! * application: large mean but small median sizes, flat α, strong β;
//! * RTP vs DFN: more distinct multi-media documents and requests, more
//!   HTML requests, smaller α, larger per-type β.

use serde::{Deserialize, Serialize};

use webcache_trace::{DocumentType, Trace, TypeMap};

use crate::generator::TraceGenerator;
use crate::sizes::SizeModel;

/// Generation parameters for one document type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypeProfile {
    /// Number of distinct documents of this type.
    pub distinct_documents: u64,
    /// Number of requests to this type.
    pub requests: u64,
    /// Popularity slope α (`N ∝ ρ^−α`).
    pub alpha: f64,
    /// Temporal-correlation slope β (`P ∝ n^−β`).
    pub beta: f64,
    /// Document-size distribution.
    pub size_model: SizeModel,
    /// Probability that a re-request finds the document modified at the
    /// origin (size change < 5%, invalidating cached copies).
    pub modification_rate: f64,
    /// Probability that a transfer is interrupted by the client (transfer
    /// size ≥ 5% below the document size).
    pub interrupt_rate: f64,
    /// Strength ρ ∈ [0, 1] of the small-documents-are-popular coupling:
    /// 0 leaves sizes independent of popularity, 1 assigns the smallest
    /// size to the most popular document (rank coupling; the marginal
    /// size distribution is preserved).
    pub size_popularity_correlation: f64,
}

impl Default for TypeProfile {
    /// An inactive type: zero documents and requests.
    fn default() -> Self {
        TypeProfile {
            distinct_documents: 0,
            requests: 0,
            alpha: 0.7,
            beta: 0.8,
            size_model: SizeModel::log_normal(8_192.0, 2_048.0, 30, 1 << 30),
            modification_rate: 0.0,
            interrupt_rate: 0.0,
            size_popularity_correlation: 0.0,
        }
    }
}

impl TypeProfile {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when rates are outside `[0, 1]`, slopes are non-positive, or
    /// an active type has more documents than requests.
    pub fn validate(&self, ty: DocumentType) {
        assert!(
            self.requests >= self.distinct_documents,
            "{ty}: every distinct document needs at least one request"
        );
        assert!(
            self.alpha >= 0.0 && self.alpha.is_finite(),
            "{ty}: α must be non-negative"
        );
        assert!(
            self.beta > 0.0 && self.beta.is_finite(),
            "{ty}: β must be positive"
        );
        for (name, rate) in [
            ("modification_rate", self.modification_rate),
            ("interrupt_rate", self.interrupt_rate),
            (
                "size_popularity_correlation",
                self.size_popularity_correlation,
            ),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{ty}: {name} must be a probability, got {rate}"
            );
        }
    }

    /// Scales document population and request volume by `factor`,
    /// keeping at least one document when the type was active.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        if self.distinct_documents == 0 {
            return *self;
        }
        let distinct = ((self.distinct_documents as f64 * factor).round() as u64).max(1);
        let requests = ((self.requests as f64 * factor).round() as u64).max(distinct);
        TypeProfile {
            distinct_documents: distinct,
            requests,
            ..*self
        }
    }
}

/// A complete workload description: one [`TypeProfile`] per document type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Display name ("DFN", "RTP", ...).
    pub name: String,
    /// Per-type generation parameters.
    pub types: TypeMap<TypeProfile>,
    /// Largest inter-reference gap, as a fraction of total requests.
    pub max_gap_fraction: f64,
}

impl WorkloadProfile {
    /// An empty profile with the given name (no active types).
    pub fn empty(name: impl Into<String>) -> Self {
        WorkloadProfile {
            name: name.into(),
            types: TypeMap::splat(TypeProfile::default()),
            max_gap_fraction: 0.25,
        }
    }

    /// The DFN-like workload (German research network, July 2001):
    /// 2 987 565 distinct documents, 6.72 M requests; image-dominated
    /// requests, application-heavy bytes, steep image popularity.
    pub fn dfn() -> Self {
        let mut types = TypeMap::splat(TypeProfile::default());
        types[DocumentType::Image] = TypeProfile {
            distinct_documents: 2_091_000,
            requests: 4_958_000,
            alpha: 0.85,
            beta: 0.70,
            size_model: SizeModel::log_normal(4_170.0, 2_048.0, 30, 2 << 20),
            modification_rate: 0.010,
            interrupt_rate: 0.005,
            size_popularity_correlation: 0.0,
        };
        types[DocumentType::Html] = TypeProfile {
            distinct_documents: 747_000,
            requests: 1_424_000,
            alpha: 0.70,
            beta: 0.85,
            size_model: SizeModel::log_normal(10_190.0, 3_584.0, 30, 1 << 20),
            modification_rate: 0.020,
            interrupt_rate: 0.005,
            size_popularity_correlation: 0.25,
        };
        types[DocumentType::MultiMedia] = TypeProfile {
            distinct_documents: 6_870,
            requests: 9_405,
            alpha: 0.55,
            beta: 1.30,
            size_model: SizeModel::log_normal(946_176.0, 307_200.0, 1 << 10, 100 << 20),
            modification_rate: 0.002,
            interrupt_rate: 0.080,
            size_popularity_correlation: 0.20,
        };
        types[DocumentType::Application] = TypeProfile {
            distinct_documents: 119_500,
            requests: 302_300,
            alpha: 0.55,
            beta: 1.20,
            size_model: SizeModel::log_normal(154_000.0, 12_288.0, 100, 50 << 20),
            modification_rate: 0.005,
            interrupt_rate: 0.050,
            size_popularity_correlation: 0.60,
        };
        types[DocumentType::Other] = TypeProfile {
            distinct_documents: 23_100,
            requests: 24_200,
            alpha: 0.60,
            beta: 0.80,
            size_model: SizeModel::log_normal(38_400.0, 4_096.0, 30, 10 << 20),
            modification_rate: 0.010,
            interrupt_rate: 0.010,
            size_popularity_correlation: 0.30,
        };
        WorkloadProfile {
            name: "DFN".to_owned(),
            types,
            max_gap_fraction: 0.25,
        }
    }

    /// The RTP-like workload (NLANR Research Triangle Park, February
    /// 2001): 2 227 339 distinct documents, 4.14 M requests; more HTML
    /// requests (44.2% vs 21.2%), more distinct multi-media documents
    /// (0.41% vs 0.23%) and multi-media requests (0.33% vs 0.14%),
    /// flatter popularity, stronger per-type temporal correlation.
    pub fn rtp() -> Self {
        let mut types = TypeMap::splat(TypeProfile::default());
        types[DocumentType::Image] = TypeProfile {
            distinct_documents: 1_381_000,
            requests: 2_105_600,
            alpha: 0.70,
            beta: 0.75,
            size_model: SizeModel::log_normal(4_608.0, 2_048.0, 30, 2 << 20),
            modification_rate: 0.010,
            interrupt_rate: 0.005,
            size_popularity_correlation: 0.0,
        };
        types[DocumentType::Html] = TypeProfile {
            distinct_documents: 735_000,
            requests: 1_832_000,
            alpha: 0.60,
            beta: 1.00,
            // Larger mean/median ratio than DFN: the paper highlights the
            // significantly different CoV of HTML sizes between traces.
            size_model: SizeModel::log_normal(13_000.0, 2_048.0, 30, 1 << 20),
            modification_rate: 0.020,
            interrupt_rate: 0.005,
            size_popularity_correlation: 0.25,
        };
        types[DocumentType::MultiMedia] = TypeProfile {
            distinct_documents: 9_130,
            requests: 13_680,
            alpha: 0.45,
            beta: 1.60,
            size_model: SizeModel::log_normal(390_000.0, 180_000.0, 1 << 10, 100 << 20),
            modification_rate: 0.002,
            interrupt_rate: 0.080,
            size_popularity_correlation: 0.20,
        };
        types[DocumentType::Application] = TypeProfile {
            distinct_documents: 78_000,
            requests: 165_800,
            alpha: 0.45,
            beta: 1.50,
            size_model: SizeModel::log_normal(125_000.0, 10_240.0, 100, 50 << 20),
            modification_rate: 0.005,
            interrupt_rate: 0.050,
            size_popularity_correlation: 0.60,
        };
        types[DocumentType::Other] = TypeProfile {
            distinct_documents: 24_200,
            requests: 27_800,
            alpha: 0.50,
            beta: 0.90,
            size_model: SizeModel::log_normal(42_000.0, 4_096.0, 30, 10 << 20),
            modification_rate: 0.010,
            interrupt_rate: 0.010,
            size_popularity_correlation: 0.30,
        };
        WorkloadProfile {
            name: "RTP".to_owned(),
            types,
            max_gap_fraction: 0.25,
        }
    }

    /// Proportionally shrinks (or grows) the workload. `scaled(1/32)` of
    /// the DFN profile yields ≈ 210 k requests — the default scale of the
    /// bench harness.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        WorkloadProfile {
            name: self.name.clone(),
            types: self.types.map(|tp| tp.scaled(factor)),
            max_gap_fraction: self.max_gap_fraction,
        }
    }

    /// Total request budget across types.
    pub fn total_requests(&self) -> u64 {
        self.types.iter().map(|(_, tp)| tp.requests).sum()
    }

    /// Total distinct documents across types.
    pub fn total_documents(&self) -> u64 {
        self.types.iter().map(|(_, tp)| tp.distinct_documents).sum()
    }

    /// Validates every type profile and the gap fraction.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistent parameter.
    pub fn validate(&self) {
        assert!(
            self.max_gap_fraction > 0.0 && self.max_gap_fraction <= 1.0,
            "max_gap_fraction must be in (0, 1]"
        );
        assert!(self.total_requests() > 0, "profile generates no requests");
        for (ty, tp) in self.types.iter() {
            tp.validate(ty);
        }
    }

    /// Generates a trace from this profile (convenience for
    /// [`TraceGenerator`]).
    pub fn build_trace(&self, seed: u64) -> Trace {
        TraceGenerator::new(self.clone()).generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfn_totals_match_table_one() {
        let p = WorkloadProfile::dfn();
        p.validate();
        assert!((p.total_documents() as i64 - 2_987_565).abs() < 1_000);
        assert!((p.total_requests() as i64 - 6_718_210).abs() < 1_000);
    }

    #[test]
    fn rtp_totals_match_table_one() {
        let p = WorkloadProfile::rtp();
        p.validate();
        assert!((p.total_documents() as i64 - 2_227_339).abs() < 1_000);
        assert!((p.total_requests() as i64 - 4_144_900).abs() < 1_000);
    }

    #[test]
    fn rtp_has_more_multimedia_and_html_share_than_dfn() {
        let dfn = WorkloadProfile::dfn();
        let rtp = WorkloadProfile::rtp();
        let share = |p: &WorkloadProfile, ty: DocumentType| {
            p.types[ty].requests as f64 / p.total_requests() as f64
        };
        assert!(
            share(&rtp, DocumentType::MultiMedia) > 2.0 * share(&dfn, DocumentType::MultiMedia)
        );
        assert!(share(&rtp, DocumentType::Html) > 1.8 * share(&dfn, DocumentType::Html));
    }

    #[test]
    fn per_type_slopes_follow_the_paper() {
        for p in [WorkloadProfile::dfn(), WorkloadProfile::rtp()] {
            let t = &p.types;
            // α: images steepest, multi media / application flattest.
            assert!(t[DocumentType::Image].alpha > t[DocumentType::Html].alpha);
            assert!(t[DocumentType::Html].alpha > t[DocumentType::MultiMedia].alpha);
            // β: inverse trend.
            assert!(t[DocumentType::MultiMedia].beta > t[DocumentType::Html].beta);
            assert!(t[DocumentType::Html].beta > t[DocumentType::Image].beta);
            // RTP flattening is cross-checked below.
        }
        let dfn = WorkloadProfile::dfn();
        let rtp = WorkloadProfile::rtp();
        for ty in DocumentType::MAIN {
            assert!(rtp.types[ty].alpha <= dfn.types[ty].alpha, "{ty}");
            assert!(rtp.types[ty].beta >= dfn.types[ty].beta, "{ty}");
        }
    }

    #[test]
    fn scaling_preserves_ratios_and_minimums() {
        let p = WorkloadProfile::dfn().scaled(1.0 / 1000.0);
        p.validate();
        let mm = &p.types[DocumentType::MultiMedia];
        assert!(mm.distinct_documents >= 1);
        assert!(mm.requests >= mm.distinct_documents);
        let img = &p.types[DocumentType::Image];
        assert!((img.distinct_documents as f64 - 2_091.0).abs() <= 1.0);
    }

    #[test]
    fn empty_profile_has_no_requests() {
        let p = WorkloadProfile::empty("test");
        assert_eq!(p.total_requests(), 0);
    }

    #[test]
    #[should_panic(expected = "no requests")]
    fn validating_empty_profile_panics() {
        WorkloadProfile::empty("test").validate();
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn more_docs_than_requests_rejected() {
        let mut p = WorkloadProfile::empty("bad");
        p.types[DocumentType::Image] = TypeProfile {
            distinct_documents: 10,
            requests: 5,
            ..TypeProfile::default()
        };
        p.validate();
    }
}
