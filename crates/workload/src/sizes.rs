//! Per-type document-size models.

use rand::Rng;
use serde::{Deserialize, Serialize};

use webcache_trace::ByteSize;

use crate::dist::{BoundedPareto, LogNormal};

/// A document-size distribution with hard clamping bounds.
///
/// The default body is log-normal, calibrated directly from the mean and
/// median the paper reports per document type (Tables 4/5); a bounded
/// Pareto variant is available for tail-sensitivity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeModel {
    /// Log-normal body calibrated from mean and median.
    LogNormal {
        /// Target mean size in bytes.
        mean: f64,
        /// Target median size in bytes.
        median: f64,
        /// Smallest generated size in bytes.
        min: u64,
        /// Largest generated size in bytes.
        max: u64,
    },
    /// Truncated Pareto with tail index `shape` over `[min, max]`.
    Pareto {
        /// Tail index (smaller = heavier tail).
        shape: f64,
        /// Smallest generated size in bytes.
        min: u64,
        /// Largest generated size in bytes.
        max: u64,
    },
}

impl SizeModel {
    /// Log-normal model with conventional web-document clamping bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < median ≤ mean` and `min < max`.
    pub fn log_normal(mean: f64, median: f64, min: u64, max: u64) -> Self {
        assert!(min < max, "need min < max clamp bounds");
        // Validate the calibration eagerly.
        let _ = LogNormal::from_mean_median(mean, median);
        SizeModel::LogNormal {
            mean,
            median,
            min,
            max,
        }
    }

    /// The clamping bounds `(min, max)` in bytes.
    pub fn bounds(&self) -> (u64, u64) {
        match *self {
            SizeModel::LogNormal { min, max, .. } | SizeModel::Pareto { min, max, .. } => {
                (min, max)
            }
        }
    }

    /// Draws one document size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ByteSize {
        let raw = match *self {
            SizeModel::LogNormal { mean, median, .. } => {
                LogNormal::from_mean_median(mean, median).sample(rng)
            }
            SizeModel::Pareto { shape, min, max } => {
                BoundedPareto::new(shape, min.max(1) as f64, max as f64).sample(rng)
            }
        };
        let (min, max) = self.bounds();
        ByteSize::new((raw.round() as u64).clamp(min, max))
    }

    /// Scales the model's target sizes by `factor` (used when deriving
    /// reduced-scale workloads; bounds are preserved).
    #[must_use]
    pub fn scaled_sizes(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        match *self {
            SizeModel::LogNormal {
                mean,
                median,
                min,
                max,
            } => SizeModel::LogNormal {
                mean: mean * factor,
                median: median * factor,
                min,
                max,
            },
            pareto @ SizeModel::Pareto { .. } => pareto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_sample_statistics() {
        let m = SizeModel::log_normal(10_000.0, 3_000.0, 30, 100_000_000);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng).as_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean / 10_000.0 - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn clamping_is_enforced() {
        let m = SizeModel::log_normal(10_000.0, 3_000.0, 5_000, 20_000);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..5_000 {
            let s = m.sample(&mut rng).as_u64();
            assert!((5_000..=20_000).contains(&s));
        }
    }

    #[test]
    fn pareto_variant_samples_in_bounds() {
        let m = SizeModel::Pareto {
            shape: 1.2,
            min: 100,
            max: 1_000_000,
        };
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..5_000 {
            let s = m.sample(&mut rng).as_u64();
            assert!((100..=1_000_000).contains(&s));
        }
        assert_eq!(m.bounds(), (100, 1_000_000));
    }

    #[test]
    fn scaled_sizes_shifts_lognormal_targets() {
        let m = SizeModel::log_normal(8_000.0, 2_000.0, 30, 1 << 30).scaled_sizes(0.5);
        match m {
            SizeModel::LogNormal { mean, median, .. } => {
                assert_eq!(mean, 4_000.0);
                assert_eq!(median, 1_000.0);
            }
            SizeModel::Pareto { .. } => panic!("variant must be preserved"),
        }
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn inverted_bounds_rejected() {
        let _ = SizeModel::log_normal(10.0, 5.0, 100, 100);
    }
}
