//! An endless, resumable request stream.
//!
//! [`WorkloadStream`] turns a [`WorkloadProfile`] into an infinite
//! iterator of [`Request`]s for long-running consumers (`webcache
//! serve`): it generates one trace *epoch* at a time with
//! [`TraceGenerator`], yields its requests in order, and rolls into the
//! next epoch — derived deterministically from the base seed and the
//! epoch number — when the current one is exhausted. The document
//! population is the profile's in every epoch; what an epoch resamples
//! is the request stream over it.
//!
//! The stream's [`position`](WorkloadStream::position) (epoch, offset)
//! fully determines the remainder: [`WorkloadStream::resume`] rebuilds a
//! stream mid-epoch, so a restarted daemon continues exactly where the
//! previous one stopped.
//!
//! ```
//! use webcache_workload::{WorkloadProfile, WorkloadStream};
//!
//! let profile = WorkloadProfile::dfn().scaled(1.0 / 4096.0);
//! let mut stream = WorkloadStream::new(profile.clone(), 42);
//! let head: Vec<_> = stream.by_ref().take(100).collect();
//! let resumed: Vec<_> = WorkloadStream::resume(profile, 42, 0, 50)
//!     .take(50)
//!     .collect();
//! assert_eq!(&head[50..], &resumed[..]);
//! ```

use webcache_trace::{Request, Trace};

use crate::generator::TraceGenerator;
use crate::profiles::WorkloadProfile;

/// Derives epoch `epoch`'s generator seed from the base seed
/// (splitmix64 of the pair, so neighboring epochs are uncorrelated).
fn epoch_seed(base_seed: u64, epoch: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The endless request stream. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    generator: TraceGenerator,
    base_seed: u64,
    epoch: u64,
    offset: usize,
    current: Trace,
}

impl WorkloadStream {
    /// A stream starting at epoch 0, offset 0.
    ///
    /// # Panics
    ///
    /// Panics when the profile fails validation (see
    /// [`TraceGenerator::new`]).
    pub fn new(profile: WorkloadProfile, base_seed: u64) -> Self {
        WorkloadStream::resume(profile, base_seed, 0, 0)
    }

    /// A stream positioned mid-flight: the next yielded request is
    /// `offset` requests into epoch `epoch` (an offset past the epoch's
    /// end rolls into the following epoch on the next pull).
    ///
    /// # Panics
    ///
    /// Panics when the profile fails validation.
    pub fn resume(profile: WorkloadProfile, base_seed: u64, epoch: u64, offset: u64) -> Self {
        let generator = TraceGenerator::new(profile);
        let current = generator.generate(epoch_seed(base_seed, epoch));
        WorkloadStream {
            generator,
            base_seed,
            epoch,
            offset: offset as usize,
            current,
        }
    }

    /// The position of the **next** request: `(epoch, offset)`.
    pub fn position(&self) -> (u64, u64) {
        (self.epoch, self.offset as u64)
    }

    /// Requests per epoch (the profile's total request budget).
    pub fn epoch_len(&self) -> usize {
        self.current.len()
    }

    /// The profile driving the stream.
    pub fn profile(&self) -> &WorkloadProfile {
        self.generator.profile()
    }

    /// Collects the next `n` requests into a [`Trace`] (spanning epoch
    /// boundaries as needed).
    pub fn take_trace(&mut self, n: usize) -> Trace {
        let mut trace = Trace::with_capacity(n);
        for request in self.by_ref().take(n) {
            trace.push(request);
        }
        trace
    }
}

impl Iterator for WorkloadStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        // Profile validation guarantees a non-empty epoch; the guard
        // keeps a hypothetical zero-request epoch from looping forever.
        if self.current.is_empty() {
            return None;
        }
        if self.offset >= self.current.len() {
            self.epoch += 1;
            self.offset = 0;
            self.current = self
                .generator
                .generate(epoch_seed(self.base_seed, self.epoch));
        }
        let request = self.current.requests()[self.offset];
        self.offset += 1;
        Some(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile::dfn().scaled(1.0 / 4096.0)
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<Request> = WorkloadStream::new(profile(), 7).take(500).collect();
        let b: Vec<Request> = WorkloadStream::new(profile(), 7).take(500).collect();
        let c: Vec<Request> = WorkloadStream::new(profile(), 8).take(500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn stream_crosses_epoch_boundaries() {
        let mut stream = WorkloadStream::new(profile(), 3);
        let epoch_len = stream.epoch_len();
        assert!(epoch_len > 0);
        let total = epoch_len + epoch_len / 2;
        let requests: Vec<Request> = stream.by_ref().take(total).collect();
        assert_eq!(requests.len(), total, "stream did not run dry");
        assert_eq!(stream.position().0, 1, "second epoch entered");
        // The second epoch resamples: its head differs from epoch 0's.
        assert_ne!(&requests[..epoch_len / 2], &requests[epoch_len..]);
    }

    #[test]
    fn resume_continues_exactly() {
        let mut original = WorkloadStream::new(profile(), 11);
        let skip = original.epoch_len() - 10; // resume point near the epoch roll
        let _ = original.by_ref().take(skip).count();
        let (epoch, offset) = original.position();
        let tail: Vec<Request> = original.take(40).collect();
        let resumed: Vec<Request> = WorkloadStream::resume(profile(), 11, epoch, offset)
            .take(40)
            .collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn take_trace_collects_across_epochs() {
        let mut stream = WorkloadStream::new(profile(), 5);
        let n = stream.epoch_len() + 25;
        let trace = stream.take_trace(n);
        assert_eq!(trace.len(), n);
    }
}
