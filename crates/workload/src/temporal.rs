//! Temporal placement of a document's references.
//!
//! The generator controls temporal correlation by drawing the gaps
//! between successive references to a document from a bounded power law
//! `P(n) ∝ n^−β` (see [`BoundedPowerLaw`]) and laying the references out
//! on a continuous position axis `[0, horizon)`, where `horizon` equals
//! the total number of requests. After all documents' references are
//! merged and sorted, one unit of the axis holds one request on average,
//! so the realized inter-reference *request* gaps follow the same
//! power-law slope.
//!
//! When a document's gap chain would overshoot the horizon it is scaled
//! down multiplicatively. A power law is scale-invariant — multiplying
//! every gap by a constant shifts the log-log line without changing its
//! slope — so the correction does not bias β.

use rand::Rng;

use crate::dist::BoundedPowerLaw;

/// Draws `count` reference positions in `[0, horizon)` whose successive
/// gaps follow `gaps`, sorted ascending.
///
/// # Panics
///
/// Panics if `horizon` is not positive and finite.
pub fn place_references<R: Rng + ?Sized>(
    rng: &mut R,
    count: u64,
    horizon: f64,
    gaps: &BoundedPowerLaw,
) -> Vec<f64> {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon must be positive, got {horizon}"
    );
    match count {
        0 => Vec::new(),
        1 => vec![rng.gen::<f64>() * horizon],
        k => {
            let mut offsets = Vec::with_capacity(k as usize);
            let mut acc = 0.0;
            offsets.push(0.0);
            for _ in 1..k {
                acc += gaps.sample(rng) as f64;
                offsets.push(acc);
            }
            let span = acc;
            // Leave the chain unscaled whenever it fits somewhere in the
            // horizon; otherwise compress it to 90% of the horizon.
            let scale = if span < horizon * 0.9 {
                1.0
            } else {
                horizon * 0.9 / span
            };
            let start = rng.gen::<f64>() * (horizon - span * scale).max(f64::MIN_POSITIVE);
            for o in &mut offsets {
                *o = start + *o * scale;
            }
            offsets
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn law() -> BoundedPowerLaw {
        BoundedPowerLaw::new(1.2, 1000)
    }

    #[test]
    fn counts_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(place_references(&mut rng, 0, 100.0, &law()).is_empty());
        for k in [1u64, 2, 17, 300] {
            let pos = place_references(&mut rng, k, 10_000.0, &law());
            assert_eq!(pos.len(), k as usize);
            assert!(pos.iter().all(|&p| (0.0..10_000.0).contains(&p)), "k={k}");
        }
    }

    #[test]
    fn positions_are_sorted_strictly() {
        let mut rng = StdRng::seed_from_u64(2);
        let pos = place_references(&mut rng, 500, 1e6, &law());
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn long_chains_are_compressed_to_fit() {
        let mut rng = StdRng::seed_from_u64(3);
        // 1000 references with gaps up to 1000 into a tiny horizon.
        let pos = place_references(&mut rng, 1000, 50.0, &law());
        assert_eq!(pos.len(), 1000);
        assert!(pos.iter().all(|&p| (0.0..50.0).contains(&p)));
    }

    #[test]
    fn scaling_preserves_gap_ratios() {
        // Same seed: the compressed chain's gap ratios equal the
        // uncompressed chain's (multiplicative scaling only).
        let a = place_references(&mut StdRng::seed_from_u64(9), 100, 1e9, &law());
        let b = place_references(&mut StdRng::seed_from_u64(9), 100, 40.0, &law());
        let ratios = |v: &[f64]| -> Vec<f64> {
            v.windows(2)
                .map(|w| w[1] - w[0])
                .collect::<Vec<_>>()
                .windows(2)
                .map(|g| g[1] / g[0])
                .collect()
        };
        for (ra, rb) in ratios(&a).iter().zip(ratios(&b).iter()) {
            assert!((ra - rb).abs() < 1e-6, "{ra} vs {rb}");
        }
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_bad_horizon() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = place_references(&mut rng, 3, 0.0, &law());
    }
}
