//! End-to-end calibration tests: the `webcache-stats` estimators must
//! recover the workload parameters that `webcache-workload` was asked to
//! generate — the loop that justifies substituting synthetic traces for
//! the unavailable DFN/RTP originals.

use webcache_stats::{correlation, popularity, TraceCharacterization};
use webcache_trace::DocumentType;
use webcache_workload::{SizeModel, TypeProfile, WorkloadProfile};

/// A workload small enough for CI but big enough for stable estimates.
fn test_profile() -> WorkloadProfile {
    WorkloadProfile::dfn().scaled(1.0 / 64.0)
}

#[test]
fn per_type_mix_matches_profile() {
    let p = test_profile();
    let trace = p.build_trace(11);
    let ch = TraceCharacterization::measure(&trace);
    let total_reqs = p.total_requests() as f64;
    let total_docs = p.total_documents() as f64;
    for (ty, tp) in p.types.iter() {
        let b = &ch.breakdown[ty];
        let want_reqs = tp.requests as f64 / total_reqs;
        let want_docs = tp.distinct_documents as f64 / total_docs;
        assert!(
            (b.total_requests - want_reqs).abs() < 1e-9,
            "{ty}: request share {} vs profile {want_reqs}",
            b.total_requests
        );
        assert!(
            (b.distinct_documents - want_docs).abs() < 1e-9,
            "{ty}: distinct share {} vs profile {want_docs}",
            b.distinct_documents
        );
    }
}

#[test]
fn size_statistics_match_size_models() {
    let p = test_profile();
    let trace = p.build_trace(12);
    let ch = TraceCharacterization::measure(&trace);
    for ty in [
        DocumentType::Image,
        DocumentType::Html,
        DocumentType::Application,
    ] {
        let SizeModel::LogNormal { mean, median, .. } = p.types[ty].size_model else {
            panic!("profiles use log-normal models");
        };
        let got = &ch.statistics[ty].document_size;
        // Application sizes are extremely heavy-tailed (mean/median ≈ 12):
        // the sample mean of a few thousand documents is noisy and the
        // max-size clamp truncates ~8% of the mass, so allow a wider band.
        let mean_tolerance = if ty == DocumentType::Application {
            0.35
        } else {
            0.15
        };
        assert!(
            (got.mean / mean - 1.0).abs() < mean_tolerance,
            "{ty}: doc-size mean {} vs target {mean}",
            got.mean
        );
        assert!(
            (got.median / median - 1.0).abs() < 0.15,
            "{ty}: doc-size median {} vs target {median}",
            got.median
        );
    }
}

#[test]
fn multimedia_and_application_dominate_bytes() {
    // The paper: MM + application are ~5% of documents/requests but > 40%
    // of trace size and requested bytes.
    let trace = test_profile().build_trace(13);
    let ch = TraceCharacterization::measure(&trace);
    let mm = &ch.breakdown[DocumentType::MultiMedia];
    let app = &ch.breakdown[DocumentType::Application];
    let req_share = mm.total_requests + app.total_requests;
    let byte_share = mm.requested_bytes + app.requested_bytes;
    assert!(req_share < 0.08, "request share = {req_share}");
    assert!(byte_share > 0.40, "byte share = {byte_share}");
}

#[test]
fn alpha_estimates_follow_profile_ordering() {
    let p = test_profile();
    let trace = p.build_trace(14);
    let a_img = popularity::alpha(&trace, Some(DocumentType::Image)).unwrap();
    let a_html = popularity::alpha(&trace, Some(DocumentType::Html)).unwrap();
    let a_app = popularity::alpha(&trace, Some(DocumentType::Application)).unwrap();
    // Absolute recovery within a loose band...
    assert!(
        (a_img - p.types[DocumentType::Image].alpha).abs() < 0.35,
        "image alpha = {a_img}"
    );
    // ...and the qualitative ordering of Table 4 (images steepest).
    assert!(
        a_img > a_app,
        "alpha: images {a_img} vs application {a_app}"
    );
    assert!(
        a_img > a_html * 0.9,
        "alpha: images {a_img} vs html {a_html}"
    );
}

#[test]
fn beta_estimates_follow_profile_ordering() {
    // A dedicated profile with requests-per-document high enough for rich
    // gap statistics in both types under comparison.
    let mut p = WorkloadProfile::empty("beta-check");
    p.types[DocumentType::Image] = TypeProfile {
        distinct_documents: 4_000,
        requests: 30_000,
        alpha: 0.8,
        beta: 0.55,
        size_model: SizeModel::log_normal(4_608.0, 2_048.0, 30, 2 << 20),
        modification_rate: 0.0,
        interrupt_rate: 0.0,
        size_popularity_correlation: 0.0,
    };
    p.types[DocumentType::MultiMedia] = TypeProfile {
        distinct_documents: 4_000,
        requests: 30_000,
        alpha: 0.8,
        beta: 1.5,
        size_model: SizeModel::log_normal(946_176.0, 307_200.0, 1 << 10, 100 << 20),
        modification_rate: 0.0,
        interrupt_rate: 0.0,
        size_popularity_correlation: 0.0,
    };
    let trace = p.build_trace(15);
    let b_img = correlation::beta(&trace, Some(DocumentType::Image)).unwrap();
    let b_mm = correlation::beta(&trace, Some(DocumentType::MultiMedia)).unwrap();
    assert!(
        b_mm > b_img + 0.3,
        "beta ordering: multimedia {b_mm} vs image {b_img}"
    );
    assert!((b_img - 0.55).abs() < 0.4, "image beta = {b_img}");
    assert!((b_mm - 1.5).abs() < 0.5, "multimedia beta = {b_mm}");
}

#[test]
fn rtp_workload_is_flatter_and_more_correlated_than_dfn() {
    let dfn = WorkloadProfile::dfn().scaled(1.0 / 64.0).build_trace(16);
    let rtp = WorkloadProfile::rtp().scaled(1.0 / 64.0).build_trace(16);
    let a_dfn = popularity::alpha(&dfn, Some(DocumentType::Image)).unwrap();
    let a_rtp = popularity::alpha(&rtp, Some(DocumentType::Image)).unwrap();
    assert!(
        a_rtp < a_dfn + 0.05,
        "RTP image alpha {a_rtp} must not exceed DFN {a_dfn}"
    );
    let ch_rtp = TraceCharacterization::measure(&rtp);
    let ch_dfn = TraceCharacterization::measure(&dfn);
    assert!(
        ch_rtp.breakdown[DocumentType::Html].total_requests
            > 1.5 * ch_dfn.breakdown[DocumentType::Html].total_requests,
        "RTP must carry a much larger HTML request share"
    );
}
