//! Property tests for the workload generator: budget exactness,
//! determinism, distribution support bounds and scaling laws.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use webcache_trace::DocumentType;
use webcache_workload::dist::{BoundedPareto, BoundedPowerLaw, LogNormal, Zipf};
use webcache_workload::temporal::place_references;
use webcache_workload::{SizeModel, TypeProfile, WorkloadProfile};

fn arb_type_profile() -> impl Strategy<Value = TypeProfile> {
    (
        1u64..300,
        0u64..900,
        0.0f64..1.5,
        0.2f64..2.0,
        0.0f64..0.2,
        0.0f64..0.2,
        0.0f64..1.0,
    )
        .prop_map(|(docs, extra, alpha, beta, modr, intr, corr)| TypeProfile {
            distinct_documents: docs,
            requests: docs + extra,
            alpha,
            beta,
            size_model: SizeModel::log_normal(8_192.0, 2_048.0, 30, 1 << 24),
            modification_rate: modr,
            interrupt_rate: intr,
            size_popularity_correlation: corr,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator hits the request and document budgets exactly, for
    /// any valid profile.
    #[test]
    fn budgets_are_exact(
        tp_a in arb_type_profile(),
        tp_b in arb_type_profile(),
        seed in 0u64..1_000,
    ) {
        let mut profile = WorkloadProfile::empty("prop");
        profile.types[DocumentType::Image] = tp_a;
        profile.types[DocumentType::Application] = tp_b;
        let trace = profile.build_trace(seed);
        prop_assert_eq!(trace.len() as u64, profile.total_requests());
        prop_assert_eq!(trace.distinct_documents() as u64, profile.total_documents());
        let by_type = trace.requests_by_type();
        prop_assert_eq!(by_type[DocumentType::Image], tp_a.requests);
        prop_assert_eq!(by_type[DocumentType::Application], tp_b.requests);
    }

    /// Same seed, same trace; the generator is a pure function.
    #[test]
    fn generation_is_deterministic(tp in arb_type_profile(), seed in 0u64..100) {
        let mut profile = WorkloadProfile::empty("prop");
        profile.types[DocumentType::Html] = tp;
        prop_assert_eq!(profile.build_trace(seed), profile.build_trace(seed));
    }

    /// Scaling preserves the per-type request proportions (within
    /// rounding) and never produces requests < documents.
    #[test]
    fn scaling_is_proportional(factor_denom in 1.0f64..64.0) {
        let p = WorkloadProfile::dfn().scaled(1.0 / factor_denom);
        p.validate();
        let full = WorkloadProfile::dfn();
        for (ty, tp) in p.types.iter() {
            let orig = &full.types[ty];
            prop_assert!(tp.requests >= tp.distinct_documents);
            let want = orig.requests as f64 / factor_denom;
            prop_assert!(
                (tp.requests as f64 - want).abs() <= want * 0.01 + tp.distinct_documents as f64,
                "{ty}: scaled requests {} vs expected {want}", tp.requests
            );
        }
    }

    /// Zipf samples stay in range and the first rank is modal for α > 0.
    #[test]
    fn zipf_support(n in 2usize..500, alpha in 0.0f64..2.0, seed in 0u64..50) {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
        // PMF is non-increasing in rank.
        for r in 1..n {
            prop_assert!(z.pmf(r) >= z.pmf(r + 1) - 1e-15);
        }
    }

    /// Log-normal and Pareto samples respect their supports.
    #[test]
    fn size_distributions_support(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ln = LogNormal::from_mean_median(10_000.0, 2_500.0);
        for _ in 0..100 {
            prop_assert!(ln.sample(&mut rng) > 0.0);
        }
        let pareto = BoundedPareto::new(1.1, 100.0, 1e8);
        for _ in 0..100 {
            let x = pareto.sample(&mut rng);
            prop_assert!((100.0..=1e8).contains(&x));
        }
    }

    /// Power-law gaps respect their bounds for any β and max.
    #[test]
    fn powerlaw_support(beta in 0.1f64..3.5, max in 1u64..100_000, seed in 0u64..50) {
        let d = BoundedPowerLaw::new(beta, max);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let g = d.sample(&mut rng);
            prop_assert!((1..=max).contains(&g));
        }
    }

    /// Reference placement yields exactly `count` strictly increasing
    /// positions within the horizon.
    #[test]
    fn placement_is_sorted_and_bounded(
        count in 0u64..500,
        horizon in 1.0f64..1e7,
        beta in 0.2f64..2.5,
        seed in 0u64..50,
    ) {
        let gaps = BoundedPowerLaw::new(beta, 10_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = place_references(&mut rng, count, horizon, &gaps);
        prop_assert_eq!(pos.len(), count as usize);
        for w in pos.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &p in &pos {
            prop_assert!((0.0..horizon).contains(&p));
        }
    }

    /// SizeModel samples always honour the clamp bounds.
    #[test]
    fn size_model_clamps(
        min in 30u64..1_000,
        extra in 1u64..1_000_000,
        seed in 0u64..50,
    ) {
        let max = min + extra;
        // Keep mean/median within the clamp so the model is sensible.
        let median = (min + extra / 4).max(31) as f64;
        let mean = median * 2.0;
        let m = SizeModel::log_normal(mean, median, min, max);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = m.sample(&mut rng).as_u64();
            prop_assert!((min..=max).contains(&s));
        }
    }
}

mod mix_and_arrival_props {
    use proptest::prelude::*;
    use webcache_trace::{DocumentType, TypeMap};
    use webcache_workload::{blend, shift_mix, ArrivalModel, WorkloadProfile};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// blend() produces valid profiles at any t and interpolates
        /// every per-type request budget monotonically.
        #[test]
        fn blend_is_valid_and_monotone(t in 0.0f64..=1.0) {
            let dfn = WorkloadProfile::dfn();
            let rtp = WorkloadProfile::rtp();
            let mid = blend(&dfn, &rtp, t);
            mid.validate();
            for ty in DocumentType::ALL {
                let (a, b) = (dfn.types[ty].requests, rtp.types[ty].requests);
                let (lo, hi) = (a.min(b), a.max(b));
                prop_assert!(
                    (lo..=hi).contains(&mid.types[ty].requests),
                    "{ty} at t={t}"
                );
            }
        }

        /// shift_mix keeps total volume within 1% and always yields a
        /// valid profile, for any target mix and blend factor.
        #[test]
        fn shift_mix_is_volume_preserving(
            weights in prop::collection::vec(0.01f64..1.0, 5),
            t in 0.0f64..=1.0,
        ) {
            let total: f64 = weights.iter().sum();
            let mut target: TypeMap<f64> = TypeMap::default();
            for (ty, w) in DocumentType::ALL.iter().zip(&weights) {
                target[*ty] = w / total;
            }
            let dfn = WorkloadProfile::dfn().scaled(1.0 / 256.0);
            let shifted = shift_mix(&dfn, &target, t);
            shifted.validate();
            let ratio = shifted.total_requests() as f64 / dfn.total_requests() as f64;
            prop_assert!((ratio - 1.0).abs() < 0.01, "volume ratio {ratio}");
        }

        /// Re-timed traces are monotone in time and preserve payload, for
        /// every arrival model.
        #[test]
        fn retime_laws(
            n in 1u64..500,
            model_sel in 0u8..3,
            rate in 1.0f64..200.0,
            seed in 0u64..50,
        ) {
            let model = match model_sel {
                0 => ArrivalModel::Uniform { spacing_ms: rate as u64 + 1 },
                1 => ArrivalModel::Poisson { rate_per_sec: rate },
                _ => ArrivalModel::daily(rate / 2.0, rate),
            };
            let mut p = WorkloadProfile::empty("prop");
            p.types[DocumentType::Html] = webcache_workload::TypeProfile {
                distinct_documents: (n / 2).max(1),
                requests: n.max(1),
                alpha: 0.7,
                beta: 0.8,
                size_model: webcache_workload::SizeModel::log_normal(
                    8_192.0, 2_048.0, 30, 1 << 24,
                ),
                modification_rate: 0.0,
                interrupt_rate: 0.0,
                size_popularity_correlation: 0.0,
            };
            let trace = p.build_trace(seed);
            let retimed = model.retime(&trace, seed);
            prop_assert_eq!(retimed.len(), trace.len());
            for w in retimed.requests().windows(2) {
                prop_assert!(w[0].timestamp <= w[1].timestamp);
            }
            for (a, b) in retimed.iter().zip(trace.iter()) {
                prop_assert_eq!(a.doc, b.doc);
                prop_assert_eq!(a.size, b.size);
                prop_assert_eq!(a.doc_type, b.doc_type);
            }
        }
    }
}
