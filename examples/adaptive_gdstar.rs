//! Adaptability of GreedyDual\* (the Figure 1 experiment): track how
//! GD\*(1) and GD\*(P) divide the cache between document types over time,
//! and how the online β estimator behaves.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adaptive_gdstar
//! ```

use webcache::core::policy::{BetaMode, GdStar};
use webcache::prelude::*;
use webcache::sim::report::occupancy_csv;

fn main() {
    let trace = WorkloadProfile::dfn().scaled(1.0 / 512.0).build_trace(3);
    let capacity = trace.overall_size().scale(0.03);
    let requests_by_type = trace.requests_by_type();
    let total = trace.len() as f64;

    for cost in [CostModel::Constant, CostModel::Packet] {
        let policy = GdStar::new(
            cost,
            BetaMode::Adaptive {
                initial: 1.0,
                refresh_interval: 2_000,
            },
        );
        let config = SimulationConfig::new(capacity).with_occupancy_samples(20);
        let report = Simulator::new(Box::new(policy), config).run(&trace);

        println!("=== {} (cache {capacity}) ===", report.policy);
        println!(
            "overall: hit rate {:.3}, byte hit rate {:.3}",
            report.overall().hit_rate(),
            report.overall().byte_hit_rate(),
        );
        for ty in DocumentType::MAIN {
            println!(
                "{:12} request share {:5.2}%  mean cached docs {:5.2}%  \
                 mean cached bytes {:5.2}%  steady-state spread {:.3}",
                ty.label(),
                requests_by_type[ty] as f64 / total * 100.0,
                report.occupancy.mean_document_fraction(ty) * 100.0,
                report.occupancy.mean_byte_fraction(ty) * 100.0,
                report.occupancy.byte_fraction_spread(ty),
            );
        }
        println!();
    }

    // The raw Figure 1 series as CSV, ready for plotting.
    let report = Simulator::new(
        Box::new(GdStar::new(CostModel::Packet, BetaMode::default())),
        SimulationConfig::new(capacity).with_occupancy_samples(10),
    )
    .run(&trace);
    println!("GD*(P) occupancy series (CSV):");
    print!("{}", occupancy_csv(&report.occupancy));
}
