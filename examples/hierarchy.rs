//! Two-level proxy hierarchy: hit-rate-oriented institutional leaves in
//! front of a byte-hit-rate-oriented backbone parent — the deployment
//! setting that motivates the paper's two cost models.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hierarchy
//! ```

use webcache::prelude::*;
use webcache::sim::{simulate_hierarchy, HierarchyConfig};

fn main() {
    let trace = WorkloadProfile::dfn().scaled(1.0 / 512.0).build_trace(9);
    let leaf_capacity = trace.overall_size().scale(0.01);
    let parent_capacity = trace.overall_size().scale(0.08);

    println!(
        "workload: {} requests; leaves at {leaf_capacity} each, parent at {parent_capacity}\n",
        trace.len()
    );

    // Compare leaf/parent policy pairings.
    let pairings = [
        (PolicyKind::Lru, PolicyKind::Lru),
        (PolicyKind::GdStar(CostModel::Constant), PolicyKind::Lru),
        (
            PolicyKind::GdStar(CostModel::Constant),
            PolicyKind::GdStar(CostModel::Packet),
        ),
        (
            PolicyKind::Gds(CostModel::Constant),
            PolicyKind::Gds(CostModel::Packet),
        ),
    ];
    println!(
        "{:28} {:>9} {:>11} {:>13} {:>15}",
        "leaf / parent", "leaf HR", "parent HR", "combined HR", "combined BHR"
    );
    for (leaf, parent) in pairings {
        let config = HierarchyConfig::new(4, leaf_capacity, parent_capacity)
            .with_leaf_policy(leaf)
            .with_parent_policy(parent);
        let report = simulate_hierarchy(&trace, config);
        println!(
            "{:28} {:>9.3} {:>11.3} {:>13.3} {:>15.3}",
            format!("{} / {}", leaf.label(), parent.label()),
            report.leaf.hit_rate(),
            report.parent.hit_rate(),
            report.combined_hit_rate(),
            report.combined_byte_hit_rate(),
        );
    }

    // How much does the shared parent help over isolated leaves?
    let isolated = simulate_hierarchy(
        &trace,
        HierarchyConfig::new(4, leaf_capacity, ByteSize::new(1)),
    );
    let shared = simulate_hierarchy(
        &trace,
        HierarchyConfig::new(4, leaf_capacity, parent_capacity),
    );
    println!(
        "\nparent contribution: combined hit rate {:.3} (shared parent) vs {:.3} (no parent)",
        shared.combined_hit_rate(),
        isolated.combined_hit_rate(),
    );
}
