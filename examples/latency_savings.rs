//! User-perceived latency: what the hit-rate differences between
//! replacement schemes mean for end users — the institutional-proxy
//! objective the paper attributes to the constant cost model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example latency_savings
//! ```

use webcache::prelude::*;
use webcache::sim::LatencyModel;

fn main() {
    let trace = WorkloadProfile::dfn().scaled(1.0 / 512.0).build_trace(21);
    let capacity = trace.overall_size().scale(0.05);
    let model = LatencyModel::campus_2001();

    println!(
        "workload: {} requests; cache {capacity}; campus-2001 link model\n",
        trace.len()
    );
    println!(
        "{:8} {:>9} {:>14} {:>12} {:>9}",
        "policy", "hit rate", "mean ms/req", "total saved", "speedup"
    );
    for kind in [
        PolicyKind::Lru,
        PolicyKind::LfuDa,
        PolicyKind::Gds(CostModel::Constant),
        PolicyKind::GdStar(CostModel::Constant),
    ] {
        let report =
            Simulator::new(kind.instantiate(), SimulationConfig::new(capacity)).run(&trace);
        let latency = model.estimate(&report);
        println!(
            "{:8} {:>9.3} {:>14.1} {:>11.1}% {:>8.2}x",
            report.policy,
            report.overall().hit_rate(),
            latency.mean_ms(),
            latency.savings() * 100.0,
            latency.speedup(),
        );
    }

    println!(
        "\nThe hit-rate ordering carries over to latency directly: every extra\n\
         percentage point of hit rate removes one slow origin round-trip per\n\
         hundred requests."
    );
}
