//! Policy comparison: run the paper's four schemes (plus the classic
//! baselines FIFO, LFU and SIZE) across a range of cache sizes and print
//! the hit-rate panels of Figure 2 in tabular form.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use webcache::prelude::*;
use webcache::sim::report::{figure_panel, Metric};

fn main() {
    let trace = WorkloadProfile::dfn().scaled(1.0 / 512.0).build_trace(7);

    // The paper's schemes under constant cost, plus three baselines from
    // the comparative literature.
    let mut policies = PolicyKind::PAPER_CONSTANT.to_vec();
    policies.extend([PolicyKind::Fifo, PolicyKind::Lfu, PolicyKind::SizeBased]);

    let capacities = CacheSizeSweep::paper_capacities(&trace);
    let sweep = CacheSizeSweep::new(policies, capacities).run(&trace);

    println!("{}", figure_panel(&sweep, Metric::HitRate, None));
    println!("{}", figure_panel(&sweep, Metric::ByteHitRate, None));
    for ty in [DocumentType::Image, DocumentType::MultiMedia] {
        println!("{}", figure_panel(&sweep, Metric::HitRate, Some(ty)));
    }

    // The headline of the study, computed live:
    let small = sweep.capacities()[1];
    let gdstar = sweep
        .get(PolicyKind::GdStar(CostModel::Constant), small)
        .expect("grid cell exists");
    let lru = sweep.get(PolicyKind::Lru, small).expect("grid cell exists");
    println!(
        "At {small}: GD*(1) image hit rate {:.3} vs LRU {:.3} — frequency+size \
         awareness wins small documents;",
        gdstar.report.by_type()[DocumentType::Image].hit_rate(),
        lru.report.by_type()[DocumentType::Image].hit_rate(),
    );
    println!(
        "but multi-media byte hit rate: GD*(1) {:.3} vs LRU {:.3} — size-aware \
         schemes sacrifice large documents.",
        gdstar.report.by_type()[DocumentType::MultiMedia].byte_hit_rate(),
        lru.report.by_type()[DocumentType::MultiMedia].byte_hit_rate(),
    );
}
