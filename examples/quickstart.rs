//! Quickstart: generate a small DFN-like workload, simulate two
//! replacement schemes, and compare their per-type hit rates.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use webcache::prelude::*;

fn main() {
    // 1. A DFN-like workload at 1/512 of the original scale
    //    (≈ 13 000 requests) — deterministic given the seed.
    let profile = WorkloadProfile::dfn().scaled(1.0 / 512.0);
    let trace = profile.build_trace(42);
    println!(
        "workload: {} requests, {} distinct documents, {} requested",
        trace.len(),
        trace.distinct_documents(),
        trace.requested_bytes(),
    );

    // 2. Simulate LRU and GreedyDual* on the same trace with a cache
    //    sized at 5% of the total trace volume.
    let capacity = trace.overall_size().scale(0.05);
    println!("cache capacity: {capacity}\n");

    for kind in [PolicyKind::Lru, PolicyKind::GdStar(CostModel::Constant)] {
        let config = SimulationConfig::new(capacity);
        let report = Simulator::new(kind.instantiate(), config).run(&trace);
        let overall = report.overall();
        println!(
            "{:8}  hit rate {:.3}  byte hit rate {:.3}",
            report.policy,
            overall.hit_rate(),
            overall.byte_hit_rate(),
        );
        for ty in DocumentType::MAIN {
            let stats = report.by_type()[ty];
            println!(
                "          {:12} hr {:.3}  bhr {:.3}  ({} requests)",
                ty.label(),
                stats.hit_rate(),
                stats.byte_hit_rate(),
                stats.requests,
            );
        }
        println!();
    }
}
