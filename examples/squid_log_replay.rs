//! Squid log replay: the real-trace path of the library. Synthesizes a
//! Squid-native `access.log` (the format both the DFN and NLANR proxies
//! logged), parses it back, preprocesses it with the paper's
//! cacheability rules, characterizes the result and replays it through a
//! cache.
//!
//! Point `parse_log` at a real `access.log` to reproduce the study on
//! your own proxy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example squid_log_replay
//! ```

use webcache::prelude::*;
use webcache::trace::preprocess::preprocess;
use webcache::trace::squid::{format_line, parse_log, LogEntry};
use webcache::trace::HttpStatus;

/// Builds a plausible access.log: a mix of cacheable documents, dynamic
/// URLs and error responses.
fn synthesize_log() -> String {
    let urls: [(&str, &str, u64); 6] = [
        ("http://www.uni-dortmund.de/index.html", "text/html", 9_200),
        ("http://www.uni-dortmund.de/logo.gif", "image/gif", 2_100),
        (
            "http://ls4.cs.uni-dortmund.de/paper.pdf",
            "application/pdf",
            412_000,
        ),
        (
            "http://media.example.de/lecture.mp3",
            "audio/mpeg",
            3_800_000,
        ),
        ("http://www.example.de/cgi-bin/search", "text/html", 5_000),
        ("http://www.example.de/page.html?id=7", "text/html", 4_000),
    ];
    let mut lines = Vec::new();
    for i in 0..2_000u64 {
        let (url, mime, size) = urls[(i % 7 % 6) as usize];
        let status = if i % 97 == 0 { 404 } else { 200 };
        let entry = LogEntry {
            timestamp: webcache::trace::Timestamp::from_millis(994_176_000_000 + i * 250),
            elapsed_ms: 40 + i % 300,
            client: format!("10.0.{}.{}", i % 4, i % 200),
            action: "TCP_MISS".to_owned(),
            status: HttpStatus::new(status),
            size: ByteSize::new(size),
            method: "GET".to_owned(),
            url: url.to_owned(),
            content_type: Some(mime.to_owned()),
        };
        lines.push(format_line(&entry));
    }
    lines.join("\n")
}

fn main() {
    let log_text = synthesize_log();
    println!("raw log: {} lines", log_text.lines().count());

    // Parse and preprocess exactly as the study does (Section 2).
    let entries = parse_log(&log_text).expect("synthesized log is well-formed");
    let (trace, stats) = preprocess(&entries);
    println!(
        "preprocessed: {} cacheable requests ({} dynamic, {} bad status dropped)",
        stats.output, stats.dropped_dynamic, stats.dropped_status,
    );

    // Characterize the request stream.
    let ch = TraceCharacterization::measure(&trace);
    println!("{}", ch.breakdown_table("replayed log"));

    // Replay through a 1 MiB proxy cache under GD*(P).
    let report = Simulator::new(
        PolicyKind::GdStar(CostModel::Packet).instantiate(),
        SimulationConfig::new(ByteSize::from_mib(1)),
    )
    .run(&trace);
    println!(
        "{}: hit rate {:.3}, byte hit rate {:.3}",
        report.policy,
        report.overall().hit_rate(),
        report.overall().byte_hit_rate(),
    );
}
