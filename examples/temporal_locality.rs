//! Temporal locality under the microscope: popularity concentration,
//! one-timers, stack distances and per-type α/β — the Section 2
//! machinery of the paper applied to a synthetic DFN workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example temporal_locality
//! ```

use webcache::prelude::*;
use webcache::stats::concentration::Concentration;
use webcache::stats::{correlation, popularity, StackDistances};

fn main() {
    let trace = WorkloadProfile::dfn().scaled(1.0 / 256.0).build_trace(33);
    println!(
        "workload: {} requests, {} distinct documents\n",
        trace.len(),
        trace.distinct_documents()
    );

    // Popularity concentration (Arlitt & Williamson style).
    let conc = Concentration::measure(&trace, None);
    println!("popularity concentration:");
    for frac in [0.01, 0.05, 0.10, 0.25] {
        println!(
            "  top {:>4.0}% of documents receive {:>5.1}% of requests",
            frac * 100.0,
            conc.request_share_of_top(frac) * 100.0
        );
    }
    println!(
        "  one-timers: {:.1}% of documents, hit-rate ceiling {:.3}\n",
        conc.one_timer_share() * 100.0,
        conc.hit_rate_ceiling()
    );

    // Stack distances: the capacity-independent view of LRU.
    let stack = StackDistances::measure(&trace, None);
    println!("LRU stack-distance analysis:");
    println!(
        "  cold references: {} ({:.1}%)",
        stack.cold_references(),
        stack.cold_references() as f64 / stack.total() as f64 * 100.0
    );
    for capacity in [100usize, 1_000, 10_000, 100_000] {
        println!(
            "  predicted LRU hit rate @ {capacity:>6} docs: {:.3}",
            stack.lru_hit_rate(capacity)
        );
    }
    println!();

    // Per-type locality parameters (the Table 4 columns).
    println!("per-type locality (alpha = popularity skew, beta = temporal correlation):");
    for ty in DocumentType::MAIN {
        let alpha = popularity::alpha(&trace, Some(ty));
        let beta = correlation::beta(&trace, Some(ty));
        println!(
            "  {:12} alpha {:>5}  beta {:>5}",
            ty.label(),
            alpha
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "-".into()),
            beta.map(|b| format!("{b:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
