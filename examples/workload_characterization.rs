//! Workload characterization: generate the DFN-like and RTP-like
//! workloads and print the Section 2 tables of the paper (properties,
//! per-type breakdown, size statistics, α and β).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example workload_characterization
//! ```

use webcache::prelude::*;

fn main() {
    for profile in [WorkloadProfile::dfn(), WorkloadProfile::rtp()] {
        let name = profile.name.clone();
        let trace = profile.scaled(1.0 / 256.0).build_trace(1);
        let ch = TraceCharacterization::measure(&trace);
        println!("{}", ch.properties_table(&name));
        println!("{}", ch.breakdown_table(&name));
        println!("{}", ch.statistics_table(&name));
        println!();
    }
}
