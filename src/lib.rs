//! # webcache
//!
//! A trace-driven evaluation framework for web cache replacement schemes,
//! reproducing Lindemann & Waldhorst, *"Evaluating the Impact of Different
//! Document Types on the Performance of Web Cache Replacement Schemes"*
//! (DSN 2002).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — request records, document-type classification, Squid log
//!   parsing and preprocessing ([`webcache_trace`]);
//! * [`workload`] — synthetic DFN/RTP-like workload generation
//!   ([`webcache_workload`]);
//! * [`stats`] — workload characterization (size statistics, popularity
//!   slope α, temporal-correlation slope β) ([`webcache_stats`]);
//! * [`core`] — the cache and the replacement policies LRU, LFU-DA,
//!   GreedyDual-Size and GreedyDual\* ([`webcache_core`]);
//! * [`sim`] — the trace-driven simulator, sweeps and reports
//!   ([`webcache_sim`]).
//!
//! # Quickstart
//!
//! ```
//! use webcache::prelude::*;
//!
//! // 1. Synthesize a small DFN-like workload.
//! let trace = WorkloadProfile::dfn()
//!     .scaled(1.0 / 1024.0)
//!     .build_trace(42);
//!
//! // 2. Simulate an LRU cache of 4 MiB over it.
//! let config = SimulationConfig::new(ByteSize::from_mib(4));
//! let report = Simulator::new(PolicyKind::Lru.instantiate(), config).run(&trace);
//!
//! // 3. Inspect overall and per-type hit rates.
//! let overall = report.overall();
//! assert!(overall.requests > 0);
//! println!("hit rate = {:.3}", overall.hit_rate());
//! println!("image hit rate = {:.3}", report.by_type()[DocumentType::Image].hit_rate());
//! ```

pub use webcache_core as core;
pub use webcache_sim as sim;
pub use webcache_stats as stats;
pub use webcache_trace as trace;
pub use webcache_workload as workload;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use webcache_core::{Cache, CostModel, PolicyKind, ReplacementPolicy};
    pub use webcache_sim::{
        CacheSizeSweep, NoopObserver, Observer, SimulationConfig, SimulationReport, Simulator,
        WindowSpec, WindowedMetrics,
    };
    pub use webcache_stats::TraceCharacterization;
    pub use webcache_trace::{ByteSize, DocId, DocumentType, Request, Timestamp, Trace, TypeMap};
    pub use webcache_workload::{TraceGenerator, WorkloadProfile};
}
