/root/repo/target/debug/deps/ablation_admission-55f4830a0b106e1b.d: crates/bench/benches/ablation_admission.rs Cargo.toml

/root/repo/target/debug/deps/libablation_admission-55f4830a0b106e1b.rmeta: crates/bench/benches/ablation_admission.rs Cargo.toml

crates/bench/benches/ablation_admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
