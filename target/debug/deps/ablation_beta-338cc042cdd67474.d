/root/repo/target/debug/deps/ablation_beta-338cc042cdd67474.d: crates/bench/benches/ablation_beta.rs Cargo.toml

/root/repo/target/debug/deps/libablation_beta-338cc042cdd67474.rmeta: crates/bench/benches/ablation_beta.rs Cargo.toml

crates/bench/benches/ablation_beta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
