/root/repo/target/debug/deps/ablation_modification-7ff0541bf9e89214.d: crates/bench/benches/ablation_modification.rs Cargo.toml

/root/repo/target/debug/deps/libablation_modification-7ff0541bf9e89214.rmeta: crates/bench/benches/ablation_modification.rs Cargo.toml

crates/bench/benches/ablation_modification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
