/root/repo/target/debug/deps/calibration-4f70fa6a371e4bc3.d: crates/workload/tests/calibration.rs

/root/repo/target/debug/deps/calibration-4f70fa6a371e4bc3: crates/workload/tests/calibration.rs

crates/workload/tests/calibration.rs:
