/root/repo/target/debug/deps/calibration-b54dbe13e9922ebc.d: crates/workload/tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-b54dbe13e9922ebc.rmeta: crates/workload/tests/calibration.rs Cargo.toml

crates/workload/tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
