/root/repo/target/debug/deps/cli_end_to_end-393d9f59e675eef1.d: crates/cli/tests/cli_end_to_end.rs

/root/repo/target/debug/deps/cli_end_to_end-393d9f59e675eef1: crates/cli/tests/cli_end_to_end.rs

crates/cli/tests/cli_end_to_end.rs:
