/root/repo/target/debug/deps/cli_end_to_end-de55adcf2bf43a20.d: crates/cli/tests/cli_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libcli_end_to_end-de55adcf2bf43a20.rmeta: crates/cli/tests/cli_end_to_end.rs Cargo.toml

crates/cli/tests/cli_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
