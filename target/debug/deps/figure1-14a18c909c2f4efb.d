/root/repo/target/debug/deps/figure1-14a18c909c2f4efb.d: crates/bench/benches/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-14a18c909c2f4efb.rmeta: crates/bench/benches/figure1.rs Cargo.toml

crates/bench/benches/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
