/root/repo/target/debug/deps/figure3-b9daa4b34e77e054.d: crates/bench/benches/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-b9daa4b34e77e054.rmeta: crates/bench/benches/figure3.rs Cargo.toml

crates/bench/benches/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
