/root/repo/target/debug/deps/future_workload-ab85466bbb8f8804.d: crates/bench/benches/future_workload.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_workload-ab85466bbb8f8804.rmeta: crates/bench/benches/future_workload.rs Cargo.toml

crates/bench/benches/future_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
