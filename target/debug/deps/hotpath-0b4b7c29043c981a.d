/root/repo/target/debug/deps/hotpath-0b4b7c29043c981a.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-0b4b7c29043c981a: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
