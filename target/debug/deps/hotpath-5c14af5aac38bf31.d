/root/repo/target/debug/deps/hotpath-5c14af5aac38bf31.d: crates/bench/src/bin/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-5c14af5aac38bf31.rmeta: crates/bench/src/bin/hotpath.rs Cargo.toml

crates/bench/src/bin/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
