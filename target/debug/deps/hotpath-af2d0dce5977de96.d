/root/repo/target/debug/deps/hotpath-af2d0dce5977de96.d: crates/bench/src/bin/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-af2d0dce5977de96.rmeta: crates/bench/src/bin/hotpath.rs Cargo.toml

crates/bench/src/bin/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
