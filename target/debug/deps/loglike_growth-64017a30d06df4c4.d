/root/repo/target/debug/deps/loglike_growth-64017a30d06df4c4.d: crates/bench/benches/loglike_growth.rs Cargo.toml

/root/repo/target/debug/deps/libloglike_growth-64017a30d06df4c4.rmeta: crates/bench/benches/loglike_growth.rs Cargo.toml

crates/bench/benches/loglike_growth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
