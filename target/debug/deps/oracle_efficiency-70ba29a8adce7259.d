/root/repo/target/debug/deps/oracle_efficiency-70ba29a8adce7259.d: crates/bench/benches/oracle_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_efficiency-70ba29a8adce7259.rmeta: crates/bench/benches/oracle_efficiency.rs Cargo.toml

crates/bench/benches/oracle_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
