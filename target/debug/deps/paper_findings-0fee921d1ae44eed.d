/root/repo/target/debug/deps/paper_findings-0fee921d1ae44eed.d: tests/paper_findings.rs

/root/repo/target/debug/deps/paper_findings-0fee921d1ae44eed: tests/paper_findings.rs

tests/paper_findings.rs:
