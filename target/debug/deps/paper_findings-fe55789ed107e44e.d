/root/repo/target/debug/deps/paper_findings-fe55789ed107e44e.d: tests/paper_findings.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_findings-fe55789ed107e44e.rmeta: tests/paper_findings.rs Cargo.toml

tests/paper_findings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
