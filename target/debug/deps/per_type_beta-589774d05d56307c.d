/root/repo/target/debug/deps/per_type_beta-589774d05d56307c.d: crates/bench/benches/per_type_beta.rs Cargo.toml

/root/repo/target/debug/deps/libper_type_beta-589774d05d56307c.rmeta: crates/bench/benches/per_type_beta.rs Cargo.toml

crates/bench/benches/per_type_beta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
