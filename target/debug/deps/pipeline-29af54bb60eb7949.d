/root/repo/target/debug/deps/pipeline-29af54bb60eb7949.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-29af54bb60eb7949: tests/pipeline.rs

tests/pipeline.rs:
