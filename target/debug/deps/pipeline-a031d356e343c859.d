/root/repo/target/debug/deps/pipeline-a031d356e343c859.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-a031d356e343c859.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
