/root/repo/target/debug/deps/policy_throughput-dab5c09b347b0cc9.d: crates/bench/benches/policy_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_throughput-dab5c09b347b0cc9.rmeta: crates/bench/benches/policy_throughput.rs Cargo.toml

crates/bench/benches/policy_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
