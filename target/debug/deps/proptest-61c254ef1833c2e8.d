/root/repo/target/debug/deps/proptest-61c254ef1833c2e8.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-61c254ef1833c2e8.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
