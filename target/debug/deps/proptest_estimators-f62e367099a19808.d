/root/repo/target/debug/deps/proptest_estimators-f62e367099a19808.d: crates/stats/tests/proptest_estimators.rs

/root/repo/target/debug/deps/proptest_estimators-f62e367099a19808: crates/stats/tests/proptest_estimators.rs

crates/stats/tests/proptest_estimators.rs:
