/root/repo/target/debug/deps/proptest_estimators-fbf7343b498d194e.d: crates/stats/tests/proptest_estimators.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_estimators-fbf7343b498d194e.rmeta: crates/stats/tests/proptest_estimators.rs Cargo.toml

crates/stats/tests/proptest_estimators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
