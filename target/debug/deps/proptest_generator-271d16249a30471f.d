/root/repo/target/debug/deps/proptest_generator-271d16249a30471f.d: crates/workload/tests/proptest_generator.rs

/root/repo/target/debug/deps/proptest_generator-271d16249a30471f: crates/workload/tests/proptest_generator.rs

crates/workload/tests/proptest_generator.rs:
