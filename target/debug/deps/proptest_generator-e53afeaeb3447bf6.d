/root/repo/target/debug/deps/proptest_generator-e53afeaeb3447bf6.d: crates/workload/tests/proptest_generator.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_generator-e53afeaeb3447bf6.rmeta: crates/workload/tests/proptest_generator.rs Cargo.toml

crates/workload/tests/proptest_generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
