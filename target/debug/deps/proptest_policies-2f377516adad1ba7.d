/root/repo/target/debug/deps/proptest_policies-2f377516adad1ba7.d: crates/core/tests/proptest_policies.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_policies-2f377516adad1ba7.rmeta: crates/core/tests/proptest_policies.rs Cargo.toml

crates/core/tests/proptest_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
