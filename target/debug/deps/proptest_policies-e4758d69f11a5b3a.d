/root/repo/target/debug/deps/proptest_policies-e4758d69f11a5b3a.d: crates/core/tests/proptest_policies.rs

/root/repo/target/debug/deps/proptest_policies-e4758d69f11a5b3a: crates/core/tests/proptest_policies.rs

crates/core/tests/proptest_policies.rs:
