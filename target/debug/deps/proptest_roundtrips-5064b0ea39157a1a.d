/root/repo/target/debug/deps/proptest_roundtrips-5064b0ea39157a1a.d: crates/trace/tests/proptest_roundtrips.rs

/root/repo/target/debug/deps/proptest_roundtrips-5064b0ea39157a1a: crates/trace/tests/proptest_roundtrips.rs

crates/trace/tests/proptest_roundtrips.rs:
