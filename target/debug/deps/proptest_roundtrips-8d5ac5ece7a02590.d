/root/repo/target/debug/deps/proptest_roundtrips-8d5ac5ece7a02590.d: crates/trace/tests/proptest_roundtrips.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrips-8d5ac5ece7a02590.rmeta: crates/trace/tests/proptest_roundtrips.rs Cargo.toml

crates/trace/tests/proptest_roundtrips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
