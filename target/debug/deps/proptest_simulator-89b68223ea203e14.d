/root/repo/target/debug/deps/proptest_simulator-89b68223ea203e14.d: crates/sim/tests/proptest_simulator.rs

/root/repo/target/debug/deps/proptest_simulator-89b68223ea203e14: crates/sim/tests/proptest_simulator.rs

crates/sim/tests/proptest_simulator.rs:
