/root/repo/target/debug/deps/proptest_simulator-e023b4035d6793d1.d: crates/sim/tests/proptest_simulator.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_simulator-e023b4035d6793d1.rmeta: crates/sim/tests/proptest_simulator.rs Cargo.toml

crates/sim/tests/proptest_simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
