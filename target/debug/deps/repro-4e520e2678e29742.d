/root/repo/target/debug/deps/repro-4e520e2678e29742.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4e520e2678e29742: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
