/root/repo/target/debug/deps/repro-4ff8c4fb861b439e.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-4ff8c4fb861b439e.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
