/root/repo/target/debug/deps/repro-86c5c610629aa5a8.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-86c5c610629aa5a8: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
