/root/repo/target/debug/deps/rtp_summary-f1447ce3f2f27982.d: crates/bench/benches/rtp_summary.rs Cargo.toml

/root/repo/target/debug/deps/librtp_summary-f1447ce3f2f27982.rmeta: crates/bench/benches/rtp_summary.rs Cargo.toml

crates/bench/benches/rtp_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
