/root/repo/target/debug/deps/table1-83e3a32d7ffd7892.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-83e3a32d7ffd7892.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
