/root/repo/target/debug/deps/table2-b339b0d8e1f2aa8c.d: crates/bench/benches/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-b339b0d8e1f2aa8c.rmeta: crates/bench/benches/table2.rs Cargo.toml

crates/bench/benches/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
