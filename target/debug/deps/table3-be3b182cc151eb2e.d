/root/repo/target/debug/deps/table3-be3b182cc151eb2e.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-be3b182cc151eb2e.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
