/root/repo/target/debug/deps/table4-ab46c25022a3dba0.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-ab46c25022a3dba0.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
