/root/repo/target/debug/deps/table5-1dc687c8a9624b23.d: crates/bench/benches/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-1dc687c8a9624b23.rmeta: crates/bench/benches/table5.rs Cargo.toml

crates/bench/benches/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
