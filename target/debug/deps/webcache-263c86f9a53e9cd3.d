/root/repo/target/debug/deps/webcache-263c86f9a53e9cd3.d: src/lib.rs

/root/repo/target/debug/deps/webcache-263c86f9a53e9cd3: src/lib.rs

src/lib.rs:
