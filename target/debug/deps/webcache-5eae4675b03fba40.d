/root/repo/target/debug/deps/webcache-5eae4675b03fba40.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache-5eae4675b03fba40.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
