/root/repo/target/debug/deps/webcache-648923d77e5f8fb8.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/webcache-648923d77e5f8fb8: crates/cli/src/main.rs

crates/cli/src/main.rs:
