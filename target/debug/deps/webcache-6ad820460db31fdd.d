/root/repo/target/debug/deps/webcache-6ad820460db31fdd.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache-6ad820460db31fdd.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
