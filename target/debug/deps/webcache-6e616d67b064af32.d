/root/repo/target/debug/deps/webcache-6e616d67b064af32.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache-6e616d67b064af32.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
