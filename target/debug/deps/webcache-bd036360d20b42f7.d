/root/repo/target/debug/deps/webcache-bd036360d20b42f7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache-bd036360d20b42f7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
