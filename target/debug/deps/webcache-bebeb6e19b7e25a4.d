/root/repo/target/debug/deps/webcache-bebeb6e19b7e25a4.d: src/lib.rs

/root/repo/target/debug/deps/libwebcache-bebeb6e19b7e25a4.rlib: src/lib.rs

/root/repo/target/debug/deps/libwebcache-bebeb6e19b7e25a4.rmeta: src/lib.rs

src/lib.rs:
