/root/repo/target/debug/deps/webcache-c3baed7583c49fc2.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/webcache-c3baed7583c49fc2: crates/cli/src/main.rs

crates/cli/src/main.rs:
