/root/repo/target/debug/deps/webcache_bench-12e3db222fa4d31a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/webcache_bench-12e3db222fa4d31a: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
