/root/repo/target/debug/deps/webcache_bench-74ab896c678793f1.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_bench-74ab896c678793f1.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
