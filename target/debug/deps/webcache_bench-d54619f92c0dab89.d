/root/repo/target/debug/deps/webcache_bench-d54619f92c0dab89.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libwebcache_bench-d54619f92c0dab89.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libwebcache_bench-d54619f92c0dab89.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
