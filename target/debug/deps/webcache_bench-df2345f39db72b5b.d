/root/repo/target/debug/deps/webcache_bench-df2345f39db72b5b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_bench-df2345f39db72b5b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
