/root/repo/target/debug/deps/webcache_cli-482ff894a182cb18.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_cli-482ff894a182cb18.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/capacity.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
