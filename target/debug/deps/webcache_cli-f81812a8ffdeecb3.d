/root/repo/target/debug/deps/webcache_cli-f81812a8ffdeecb3.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libwebcache_cli-f81812a8ffdeecb3.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libwebcache_cli-f81812a8ffdeecb3.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/capacity.rs:
crates/cli/src/commands.rs:
