/root/repo/target/debug/deps/webcache_cli-fd9885337e1902e1.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/webcache_cli-fd9885337e1902e1: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/capacity.rs:
crates/cli/src/commands.rs:
