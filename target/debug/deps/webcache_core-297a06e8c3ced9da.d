/root/repo/target/debug/deps/webcache_core-297a06e8c3ced9da.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_core-297a06e8c3ced9da.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/cache.rs:
crates/core/src/cost.rs:
crates/core/src/float.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/fifo.rs:
crates/core/src/policy/gds.rs:
crates/core/src/policy/gdsf.rs:
crates/core/src/policy/gdstar.rs:
crates/core/src/policy/lfu.rs:
crates/core/src/policy/lfuda.rs:
crates/core/src/policy/lru.rs:
crates/core/src/policy/lruk.rs:
crates/core/src/policy/size.rs:
crates/core/src/policy/slru.rs:
crates/core/src/pqueue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
