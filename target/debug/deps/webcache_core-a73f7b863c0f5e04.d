/root/repo/target/debug/deps/webcache_core-a73f7b863c0f5e04.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs

/root/repo/target/debug/deps/libwebcache_core-a73f7b863c0f5e04.rlib: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs

/root/repo/target/debug/deps/libwebcache_core-a73f7b863c0f5e04.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/cache.rs:
crates/core/src/cost.rs:
crates/core/src/float.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/fifo.rs:
crates/core/src/policy/gds.rs:
crates/core/src/policy/gdsf.rs:
crates/core/src/policy/gdstar.rs:
crates/core/src/policy/lfu.rs:
crates/core/src/policy/lfuda.rs:
crates/core/src/policy/lru.rs:
crates/core/src/policy/lruk.rs:
crates/core/src/policy/size.rs:
crates/core/src/policy/slru.rs:
crates/core/src/pqueue.rs:
