/root/repo/target/debug/deps/webcache_sim-63a93cdda20841c0.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

/root/repo/target/debug/deps/webcache_sim-63a93cdda20841c0: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/latency.rs:
crates/sim/src/metrics.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/oracle.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
