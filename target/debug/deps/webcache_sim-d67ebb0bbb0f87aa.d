/root/repo/target/debug/deps/webcache_sim-d67ebb0bbb0f87aa.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_sim-d67ebb0bbb0f87aa.rmeta: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/latency.rs:
crates/sim/src/metrics.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/oracle.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
