/root/repo/target/debug/deps/webcache_stats-239ae673a2db4014.d: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libwebcache_stats-239ae673a2db4014.rlib: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libwebcache_stats-239ae673a2db4014.rmeta: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/characterize.rs:
crates/stats/src/concentration.rs:
crates/stats/src/correlation.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/popularity.rs:
crates/stats/src/regression.rs:
crates/stats/src/stack.rs:
crates/stats/src/table.rs:
