/root/repo/target/debug/deps/webcache_stats-379fab1f64748db3.d: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/webcache_stats-379fab1f64748db3: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/characterize.rs:
crates/stats/src/concentration.rs:
crates/stats/src/correlation.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/popularity.rs:
crates/stats/src/regression.rs:
crates/stats/src/stack.rs:
crates/stats/src/table.rs:
