/root/repo/target/debug/deps/webcache_stats-7a4a89393edf1cf6.d: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_stats-7a4a89393edf1cf6.rmeta: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/characterize.rs:
crates/stats/src/concentration.rs:
crates/stats/src/correlation.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/popularity.rs:
crates/stats/src/regression.rs:
crates/stats/src/stack.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
