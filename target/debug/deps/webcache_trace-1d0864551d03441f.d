/root/repo/target/debug/deps/webcache_trace-1d0864551d03441f.d: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/dense.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/fxhash.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_trace-1d0864551d03441f.rmeta: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/dense.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/fxhash.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/cacheability.rs:
crates/trace/src/canonical.rs:
crates/trace/src/clf.rs:
crates/trace/src/dense.rs:
crates/trace/src/doctype.rs:
crates/trace/src/error.rs:
crates/trace/src/format.rs:
crates/trace/src/format_bin.rs:
crates/trace/src/fxhash.rs:
crates/trace/src/preprocess.rs:
crates/trace/src/record.rs:
crates/trace/src/squid.rs:
crates/trace/src/status.rs:
crates/trace/src/transform.rs:
crates/trace/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
