/root/repo/target/debug/deps/webcache_trace-b61b1a019f47b20d.d: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/dense.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/fxhash.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs

/root/repo/target/debug/deps/libwebcache_trace-b61b1a019f47b20d.rlib: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/dense.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/fxhash.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs

/root/repo/target/debug/deps/libwebcache_trace-b61b1a019f47b20d.rmeta: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/dense.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/fxhash.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs

crates/trace/src/lib.rs:
crates/trace/src/cacheability.rs:
crates/trace/src/canonical.rs:
crates/trace/src/clf.rs:
crates/trace/src/dense.rs:
crates/trace/src/doctype.rs:
crates/trace/src/error.rs:
crates/trace/src/format.rs:
crates/trace/src/format_bin.rs:
crates/trace/src/fxhash.rs:
crates/trace/src/preprocess.rs:
crates/trace/src/record.rs:
crates/trace/src/squid.rs:
crates/trace/src/status.rs:
crates/trace/src/transform.rs:
crates/trace/src/types.rs:
