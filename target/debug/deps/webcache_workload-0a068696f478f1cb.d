/root/repo/target/debug/deps/webcache_workload-0a068696f478f1cb.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs

/root/repo/target/debug/deps/libwebcache_workload-0a068696f478f1cb.rlib: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs

/root/repo/target/debug/deps/libwebcache_workload-0a068696f478f1cb.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/dist/mod.rs:
crates/workload/src/dist/lognormal.rs:
crates/workload/src/dist/pareto.rs:
crates/workload/src/dist/powerlaw.rs:
crates/workload/src/dist/zipf.rs:
crates/workload/src/generator.rs:
crates/workload/src/mix.rs:
crates/workload/src/profiles.rs:
crates/workload/src/sizes.rs:
crates/workload/src/temporal.rs:
