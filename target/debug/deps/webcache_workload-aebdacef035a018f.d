/root/repo/target/debug/deps/webcache_workload-aebdacef035a018f.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs Cargo.toml

/root/repo/target/debug/deps/libwebcache_workload-aebdacef035a018f.rmeta: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/dist/mod.rs:
crates/workload/src/dist/lognormal.rs:
crates/workload/src/dist/pareto.rs:
crates/workload/src/dist/powerlaw.rs:
crates/workload/src/dist/zipf.rs:
crates/workload/src/generator.rs:
crates/workload/src/mix.rs:
crates/workload/src/profiles.rs:
crates/workload/src/sizes.rs:
crates/workload/src/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
