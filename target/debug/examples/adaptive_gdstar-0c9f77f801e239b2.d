/root/repo/target/debug/examples/adaptive_gdstar-0c9f77f801e239b2.d: examples/adaptive_gdstar.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_gdstar-0c9f77f801e239b2.rmeta: examples/adaptive_gdstar.rs Cargo.toml

examples/adaptive_gdstar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
