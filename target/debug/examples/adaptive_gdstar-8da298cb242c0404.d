/root/repo/target/debug/examples/adaptive_gdstar-8da298cb242c0404.d: examples/adaptive_gdstar.rs

/root/repo/target/debug/examples/adaptive_gdstar-8da298cb242c0404: examples/adaptive_gdstar.rs

examples/adaptive_gdstar.rs:
