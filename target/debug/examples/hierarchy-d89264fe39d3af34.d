/root/repo/target/debug/examples/hierarchy-d89264fe39d3af34.d: examples/hierarchy.rs

/root/repo/target/debug/examples/hierarchy-d89264fe39d3af34: examples/hierarchy.rs

examples/hierarchy.rs:
