/root/repo/target/debug/examples/hierarchy-f2e8b5b970f361ec.d: examples/hierarchy.rs Cargo.toml

/root/repo/target/debug/examples/libhierarchy-f2e8b5b970f361ec.rmeta: examples/hierarchy.rs Cargo.toml

examples/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
