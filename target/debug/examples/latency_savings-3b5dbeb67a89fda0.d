/root/repo/target/debug/examples/latency_savings-3b5dbeb67a89fda0.d: examples/latency_savings.rs

/root/repo/target/debug/examples/latency_savings-3b5dbeb67a89fda0: examples/latency_savings.rs

examples/latency_savings.rs:
