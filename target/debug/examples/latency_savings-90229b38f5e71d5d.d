/root/repo/target/debug/examples/latency_savings-90229b38f5e71d5d.d: examples/latency_savings.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_savings-90229b38f5e71d5d.rmeta: examples/latency_savings.rs Cargo.toml

examples/latency_savings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
