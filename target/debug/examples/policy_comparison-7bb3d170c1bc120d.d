/root/repo/target/debug/examples/policy_comparison-7bb3d170c1bc120d.d: examples/policy_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_comparison-7bb3d170c1bc120d.rmeta: examples/policy_comparison.rs Cargo.toml

examples/policy_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
