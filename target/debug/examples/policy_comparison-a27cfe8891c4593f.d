/root/repo/target/debug/examples/policy_comparison-a27cfe8891c4593f.d: examples/policy_comparison.rs

/root/repo/target/debug/examples/policy_comparison-a27cfe8891c4593f: examples/policy_comparison.rs

examples/policy_comparison.rs:
