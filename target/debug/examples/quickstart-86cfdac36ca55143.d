/root/repo/target/debug/examples/quickstart-86cfdac36ca55143.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-86cfdac36ca55143.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
