/root/repo/target/debug/examples/quickstart-ac2c306605aa868c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ac2c306605aa868c: examples/quickstart.rs

examples/quickstart.rs:
