/root/repo/target/debug/examples/squid_log_replay-166abc91d3cf87a6.d: examples/squid_log_replay.rs Cargo.toml

/root/repo/target/debug/examples/libsquid_log_replay-166abc91d3cf87a6.rmeta: examples/squid_log_replay.rs Cargo.toml

examples/squid_log_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
