/root/repo/target/debug/examples/squid_log_replay-22ce8860db1233e8.d: examples/squid_log_replay.rs

/root/repo/target/debug/examples/squid_log_replay-22ce8860db1233e8: examples/squid_log_replay.rs

examples/squid_log_replay.rs:
