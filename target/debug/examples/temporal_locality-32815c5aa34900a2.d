/root/repo/target/debug/examples/temporal_locality-32815c5aa34900a2.d: examples/temporal_locality.rs

/root/repo/target/debug/examples/temporal_locality-32815c5aa34900a2: examples/temporal_locality.rs

examples/temporal_locality.rs:
