/root/repo/target/debug/examples/temporal_locality-df7447bd3228b909.d: examples/temporal_locality.rs Cargo.toml

/root/repo/target/debug/examples/libtemporal_locality-df7447bd3228b909.rmeta: examples/temporal_locality.rs Cargo.toml

examples/temporal_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
