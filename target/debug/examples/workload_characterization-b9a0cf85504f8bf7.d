/root/repo/target/debug/examples/workload_characterization-b9a0cf85504f8bf7.d: examples/workload_characterization.rs

/root/repo/target/debug/examples/workload_characterization-b9a0cf85504f8bf7: examples/workload_characterization.rs

examples/workload_characterization.rs:
