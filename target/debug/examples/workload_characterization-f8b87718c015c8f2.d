/root/repo/target/debug/examples/workload_characterization-f8b87718c015c8f2.d: examples/workload_characterization.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_characterization-f8b87718c015c8f2.rmeta: examples/workload_characterization.rs Cargo.toml

examples/workload_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
