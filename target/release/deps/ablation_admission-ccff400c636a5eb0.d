/root/repo/target/release/deps/ablation_admission-ccff400c636a5eb0.d: crates/bench/benches/ablation_admission.rs

/root/repo/target/release/deps/ablation_admission-ccff400c636a5eb0: crates/bench/benches/ablation_admission.rs

crates/bench/benches/ablation_admission.rs:
