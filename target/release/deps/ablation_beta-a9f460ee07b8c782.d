/root/repo/target/release/deps/ablation_beta-a9f460ee07b8c782.d: crates/bench/benches/ablation_beta.rs

/root/repo/target/release/deps/ablation_beta-a9f460ee07b8c782: crates/bench/benches/ablation_beta.rs

crates/bench/benches/ablation_beta.rs:
