/root/repo/target/release/deps/ablation_modification-5ce15f8229cb3c39.d: crates/bench/benches/ablation_modification.rs

/root/repo/target/release/deps/ablation_modification-5ce15f8229cb3c39: crates/bench/benches/ablation_modification.rs

crates/bench/benches/ablation_modification.rs:
