/root/repo/target/release/deps/figure1-a9cfb64a5f613d99.d: crates/bench/benches/figure1.rs

/root/repo/target/release/deps/figure1-a9cfb64a5f613d99: crates/bench/benches/figure1.rs

crates/bench/benches/figure1.rs:
