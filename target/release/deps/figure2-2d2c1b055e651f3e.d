/root/repo/target/release/deps/figure2-2d2c1b055e651f3e.d: crates/bench/benches/figure2.rs

/root/repo/target/release/deps/figure2-2d2c1b055e651f3e: crates/bench/benches/figure2.rs

crates/bench/benches/figure2.rs:
