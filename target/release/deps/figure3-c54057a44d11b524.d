/root/repo/target/release/deps/figure3-c54057a44d11b524.d: crates/bench/benches/figure3.rs

/root/repo/target/release/deps/figure3-c54057a44d11b524: crates/bench/benches/figure3.rs

crates/bench/benches/figure3.rs:
