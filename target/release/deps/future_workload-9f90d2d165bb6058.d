/root/repo/target/release/deps/future_workload-9f90d2d165bb6058.d: crates/bench/benches/future_workload.rs

/root/repo/target/release/deps/future_workload-9f90d2d165bb6058: crates/bench/benches/future_workload.rs

crates/bench/benches/future_workload.rs:
