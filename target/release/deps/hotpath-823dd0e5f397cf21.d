/root/repo/target/release/deps/hotpath-823dd0e5f397cf21.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-823dd0e5f397cf21: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
