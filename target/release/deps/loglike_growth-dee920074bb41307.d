/root/repo/target/release/deps/loglike_growth-dee920074bb41307.d: crates/bench/benches/loglike_growth.rs

/root/repo/target/release/deps/loglike_growth-dee920074bb41307: crates/bench/benches/loglike_growth.rs

crates/bench/benches/loglike_growth.rs:
