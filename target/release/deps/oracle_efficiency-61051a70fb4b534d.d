/root/repo/target/release/deps/oracle_efficiency-61051a70fb4b534d.d: crates/bench/benches/oracle_efficiency.rs

/root/repo/target/release/deps/oracle_efficiency-61051a70fb4b534d: crates/bench/benches/oracle_efficiency.rs

crates/bench/benches/oracle_efficiency.rs:
