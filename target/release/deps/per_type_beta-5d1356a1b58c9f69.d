/root/repo/target/release/deps/per_type_beta-5d1356a1b58c9f69.d: crates/bench/benches/per_type_beta.rs

/root/repo/target/release/deps/per_type_beta-5d1356a1b58c9f69: crates/bench/benches/per_type_beta.rs

crates/bench/benches/per_type_beta.rs:
