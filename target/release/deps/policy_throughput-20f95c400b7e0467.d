/root/repo/target/release/deps/policy_throughput-20f95c400b7e0467.d: crates/bench/benches/policy_throughput.rs

/root/repo/target/release/deps/policy_throughput-20f95c400b7e0467: crates/bench/benches/policy_throughput.rs

crates/bench/benches/policy_throughput.rs:
