/root/repo/target/release/deps/proptest-68199052bf1f62c1.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-68199052bf1f62c1.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-68199052bf1f62c1.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
