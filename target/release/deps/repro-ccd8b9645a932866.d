/root/repo/target/release/deps/repro-ccd8b9645a932866.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-ccd8b9645a932866: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
