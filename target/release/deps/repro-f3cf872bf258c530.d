/root/repo/target/release/deps/repro-f3cf872bf258c530.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-f3cf872bf258c530: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
