/root/repo/target/release/deps/rtp_summary-18317bc56c676a77.d: crates/bench/benches/rtp_summary.rs

/root/repo/target/release/deps/rtp_summary-18317bc56c676a77: crates/bench/benches/rtp_summary.rs

crates/bench/benches/rtp_summary.rs:
