/root/repo/target/release/deps/serde-556a92a93c5c3850.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-556a92a93c5c3850.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-556a92a93c5c3850.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
