/root/repo/target/release/deps/table1-7f9f233007ee404b.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-7f9f233007ee404b: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
