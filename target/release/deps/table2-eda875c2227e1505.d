/root/repo/target/release/deps/table2-eda875c2227e1505.d: crates/bench/benches/table2.rs

/root/repo/target/release/deps/table2-eda875c2227e1505: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
