/root/repo/target/release/deps/table3-07edf853f2eb5e9e.d: crates/bench/benches/table3.rs

/root/repo/target/release/deps/table3-07edf853f2eb5e9e: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
