/root/repo/target/release/deps/table4-6b10223e6b3616f9.d: crates/bench/benches/table4.rs

/root/repo/target/release/deps/table4-6b10223e6b3616f9: crates/bench/benches/table4.rs

crates/bench/benches/table4.rs:
