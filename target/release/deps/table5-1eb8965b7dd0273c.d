/root/repo/target/release/deps/table5-1eb8965b7dd0273c.d: crates/bench/benches/table5.rs

/root/repo/target/release/deps/table5-1eb8965b7dd0273c: crates/bench/benches/table5.rs

crates/bench/benches/table5.rs:
