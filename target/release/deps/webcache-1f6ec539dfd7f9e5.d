/root/repo/target/release/deps/webcache-1f6ec539dfd7f9e5.d: crates/cli/src/main.rs

/root/repo/target/release/deps/webcache-1f6ec539dfd7f9e5: crates/cli/src/main.rs

crates/cli/src/main.rs:
