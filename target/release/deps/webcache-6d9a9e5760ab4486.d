/root/repo/target/release/deps/webcache-6d9a9e5760ab4486.d: crates/cli/src/main.rs

/root/repo/target/release/deps/webcache-6d9a9e5760ab4486: crates/cli/src/main.rs

crates/cli/src/main.rs:
