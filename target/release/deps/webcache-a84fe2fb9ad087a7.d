/root/repo/target/release/deps/webcache-a84fe2fb9ad087a7.d: src/lib.rs

/root/repo/target/release/deps/webcache-a84fe2fb9ad087a7: src/lib.rs

src/lib.rs:
