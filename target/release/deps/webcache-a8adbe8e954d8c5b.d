/root/repo/target/release/deps/webcache-a8adbe8e954d8c5b.d: src/lib.rs

/root/repo/target/release/deps/libwebcache-a8adbe8e954d8c5b.rlib: src/lib.rs

/root/repo/target/release/deps/libwebcache-a8adbe8e954d8c5b.rmeta: src/lib.rs

src/lib.rs:
