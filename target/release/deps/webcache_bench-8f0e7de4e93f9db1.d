/root/repo/target/release/deps/webcache_bench-8f0e7de4e93f9db1.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/webcache_bench-8f0e7de4e93f9db1: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
