/root/repo/target/release/deps/webcache_bench-e2c3f295b5103eec.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libwebcache_bench-e2c3f295b5103eec.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libwebcache_bench-e2c3f295b5103eec.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
