/root/repo/target/release/deps/webcache_cli-75ef2b44632b2428.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/webcache_cli-75ef2b44632b2428: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/capacity.rs:
crates/cli/src/commands.rs:
