/root/repo/target/release/deps/webcache_cli-ab46a0ff6d62cabe.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libwebcache_cli-ab46a0ff6d62cabe.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libwebcache_cli-ab46a0ff6d62cabe.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/capacity.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/capacity.rs:
crates/cli/src/commands.rs:
