/root/repo/target/release/deps/webcache_core-0c4d483df325f661.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs

/root/repo/target/release/deps/webcache_core-0c4d483df325f661: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/cache.rs crates/core/src/cost.rs crates/core/src/float.rs crates/core/src/policy/mod.rs crates/core/src/policy/fifo.rs crates/core/src/policy/gds.rs crates/core/src/policy/gdsf.rs crates/core/src/policy/gdstar.rs crates/core/src/policy/lfu.rs crates/core/src/policy/lfuda.rs crates/core/src/policy/lru.rs crates/core/src/policy/lruk.rs crates/core/src/policy/size.rs crates/core/src/policy/slru.rs crates/core/src/pqueue.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/cache.rs:
crates/core/src/cost.rs:
crates/core/src/float.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/fifo.rs:
crates/core/src/policy/gds.rs:
crates/core/src/policy/gdsf.rs:
crates/core/src/policy/gdstar.rs:
crates/core/src/policy/lfu.rs:
crates/core/src/policy/lfuda.rs:
crates/core/src/policy/lru.rs:
crates/core/src/policy/lruk.rs:
crates/core/src/policy/size.rs:
crates/core/src/policy/slru.rs:
crates/core/src/pqueue.rs:
