/root/repo/target/release/deps/webcache_sim-09a14a5b2fa2d0ff.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

/root/repo/target/release/deps/libwebcache_sim-09a14a5b2fa2d0ff.rlib: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

/root/repo/target/release/deps/libwebcache_sim-09a14a5b2fa2d0ff.rmeta: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/latency.rs:
crates/sim/src/metrics.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/oracle.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
