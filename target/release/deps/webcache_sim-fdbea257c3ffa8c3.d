/root/repo/target/release/deps/webcache_sim-fdbea257c3ffa8c3.d: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

/root/repo/target/release/deps/webcache_sim-fdbea257c3ffa8c3: crates/sim/src/lib.rs crates/sim/src/experiment.rs crates/sim/src/hierarchy.rs crates/sim/src/latency.rs crates/sim/src/metrics.rs crates/sim/src/occupancy.rs crates/sim/src/oracle.rs crates/sim/src/report.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/experiment.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/latency.rs:
crates/sim/src/metrics.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/oracle.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
