/root/repo/target/release/deps/webcache_stats-7a60ec521942dd29.d: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

/root/repo/target/release/deps/webcache_stats-7a60ec521942dd29: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/characterize.rs:
crates/stats/src/concentration.rs:
crates/stats/src/correlation.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/popularity.rs:
crates/stats/src/regression.rs:
crates/stats/src/stack.rs:
crates/stats/src/table.rs:
