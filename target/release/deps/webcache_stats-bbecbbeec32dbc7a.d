/root/repo/target/release/deps/webcache_stats-bbecbbeec32dbc7a.d: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libwebcache_stats-bbecbbeec32dbc7a.rlib: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libwebcache_stats-bbecbbeec32dbc7a.rmeta: crates/stats/src/lib.rs crates/stats/src/characterize.rs crates/stats/src/concentration.rs crates/stats/src/correlation.rs crates/stats/src/descriptive.rs crates/stats/src/popularity.rs crates/stats/src/regression.rs crates/stats/src/stack.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/characterize.rs:
crates/stats/src/concentration.rs:
crates/stats/src/correlation.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/popularity.rs:
crates/stats/src/regression.rs:
crates/stats/src/stack.rs:
crates/stats/src/table.rs:
