/root/repo/target/release/deps/webcache_trace-617267645fafa63e.d: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs

/root/repo/target/release/deps/webcache_trace-617267645fafa63e: crates/trace/src/lib.rs crates/trace/src/cacheability.rs crates/trace/src/canonical.rs crates/trace/src/clf.rs crates/trace/src/doctype.rs crates/trace/src/error.rs crates/trace/src/format.rs crates/trace/src/format_bin.rs crates/trace/src/preprocess.rs crates/trace/src/record.rs crates/trace/src/squid.rs crates/trace/src/status.rs crates/trace/src/transform.rs crates/trace/src/types.rs

crates/trace/src/lib.rs:
crates/trace/src/cacheability.rs:
crates/trace/src/canonical.rs:
crates/trace/src/clf.rs:
crates/trace/src/doctype.rs:
crates/trace/src/error.rs:
crates/trace/src/format.rs:
crates/trace/src/format_bin.rs:
crates/trace/src/preprocess.rs:
crates/trace/src/record.rs:
crates/trace/src/squid.rs:
crates/trace/src/status.rs:
crates/trace/src/transform.rs:
crates/trace/src/types.rs:
