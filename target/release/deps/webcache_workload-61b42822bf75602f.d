/root/repo/target/release/deps/webcache_workload-61b42822bf75602f.d: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs

/root/repo/target/release/deps/webcache_workload-61b42822bf75602f: crates/workload/src/lib.rs crates/workload/src/arrivals.rs crates/workload/src/dist/mod.rs crates/workload/src/dist/lognormal.rs crates/workload/src/dist/pareto.rs crates/workload/src/dist/powerlaw.rs crates/workload/src/dist/zipf.rs crates/workload/src/generator.rs crates/workload/src/mix.rs crates/workload/src/profiles.rs crates/workload/src/sizes.rs crates/workload/src/temporal.rs

crates/workload/src/lib.rs:
crates/workload/src/arrivals.rs:
crates/workload/src/dist/mod.rs:
crates/workload/src/dist/lognormal.rs:
crates/workload/src/dist/pareto.rs:
crates/workload/src/dist/powerlaw.rs:
crates/workload/src/dist/zipf.rs:
crates/workload/src/generator.rs:
crates/workload/src/mix.rs:
crates/workload/src/profiles.rs:
crates/workload/src/sizes.rs:
crates/workload/src/temporal.rs:
