//! End-to-end assertions of the paper's qualitative findings on the
//! synthetic DFN/RTP workloads — the reproduction oracle, kept at a
//! small scale so `cargo test` stays fast. The full-resolution runs live
//! in the bench harness (`cargo run -p webcache-bench --bin repro`).

use webcache::prelude::*;
use webcache::sim::SweepReport;

const SCALE: f64 = 1.0 / 256.0;
const SEED: u64 = 20020623;

fn dfn() -> Trace {
    WorkloadProfile::dfn().scaled(SCALE).build_trace(SEED)
}

fn sweep(trace: &Trace, policies: Vec<PolicyKind>) -> SweepReport {
    // A small-but-interesting subset of the paper's cache sizes.
    let overall = trace.overall_size();
    let capacities = vec![
        overall.scale(0.01),
        overall.scale(0.05),
        overall.scale(0.20),
    ];
    CacheSizeSweep::new(policies, capacities).run(trace)
}

fn hr(sweep: &SweepReport, policy: PolicyKind, ty: Option<DocumentType>, idx: usize) -> f64 {
    sweep.hit_rate_series(policy, ty)[idx].1
}

fn bhr(sweep: &SweepReport, policy: PolicyKind, ty: Option<DocumentType>, idx: usize) -> f64 {
    sweep.byte_hit_rate_series(policy, ty)[idx].1
}

const GDS1: PolicyKind = PolicyKind::Gds(CostModel::Constant);
const GDSTAR1: PolicyKind = PolicyKind::GdStar(CostModel::Constant);
const GDSP: PolicyKind = PolicyKind::Gds(CostModel::Packet);
const GDSTARP: PolicyKind = PolicyKind::GdStar(CostModel::Packet);

/// Figure 2: under constant cost, the size-aware schemes clearly beat the
/// recency/frequency schemes on image and HTML hit rate.
#[test]
fn constant_cost_size_aware_schemes_win_image_and_html_hit_rate() {
    let trace = dfn();
    let s = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    for idx in [0usize, 1] {
        for ty in [DocumentType::Image, DocumentType::Html] {
            let gd = hr(&s, GDSTAR1, Some(ty), idx);
            let gds = hr(&s, GDS1, Some(ty), idx);
            let lru = hr(&s, PolicyKind::Lru, Some(ty), idx);
            let lfuda = hr(&s, PolicyKind::LfuDa, Some(ty), idx);
            assert!(
                gd > lru && gd > lfuda && gds > lru && gds > lfuda,
                "{ty} @ size {idx}: GD*(1)={gd:.3} GDS(1)={gds:.3} LRU={lru:.3} LFU-DA={lfuda:.3}"
            );
        }
    }
}

/// Figure 2: frequency information helps — LFU-DA beats LRU and GD*(1)
/// at least matches GDS(1) on image hit rate.
#[test]
fn constant_cost_frequency_beats_recency_for_images() {
    let trace = dfn();
    let s = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    for idx in [0usize, 1] {
        let ty = Some(DocumentType::Image);
        assert!(
            hr(&s, PolicyKind::LfuDa, ty, idx) > hr(&s, PolicyKind::Lru, ty, idx),
            "LFU-DA must beat LRU on image HR at size {idx}"
        );
        assert!(
            hr(&s, GDSTAR1, ty, idx) > 0.98 * hr(&s, GDS1, ty, idx),
            "GD*(1) must at least match GDS(1) on image HR at size {idx}"
        );
    }
}

/// Figure 2: for multi-media documents the picture inverts — LRU achieves
/// the best hit rates and GD*(1) performs worst of the four.
#[test]
fn constant_cost_lru_wins_multimedia() {
    let trace = dfn();
    let s = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    let ty = Some(DocumentType::MultiMedia);
    // Compare at the smaller cache sizes where eviction pressure exists.
    let lru: f64 = hr(&s, PolicyKind::Lru, ty, 0) + hr(&s, PolicyKind::Lru, ty, 1);
    let gdstar: f64 = hr(&s, GDSTAR1, ty, 0) + hr(&s, GDSTAR1, ty, 1);
    let gds: f64 = hr(&s, GDS1, ty, 0) + hr(&s, GDS1, ty, 1);
    assert!(
        lru > gdstar,
        "LRU multimedia HR {lru:.3} must beat GD*(1) {gdstar:.3}"
    );
    assert!(
        lru > gds,
        "LRU multimedia HR {lru:.3} must beat GDS(1) {gds:.3}"
    );

    // And the byte-hit-rate gap is even larger (the paper's explanation
    // for GDS(1)/GD*(1)'s poor overall byte hit rate).
    let lru_b: f64 = bhr(&s, PolicyKind::Lru, ty, 0) + bhr(&s, PolicyKind::Lru, ty, 1);
    let gdstar_b: f64 = bhr(&s, GDSTAR1, ty, 0) + bhr(&s, GDSTAR1, ty, 1);
    assert!(
        lru_b > gdstar_b,
        "LRU multimedia BHR {lru_b:.3} must beat GD*(1) {gdstar_b:.3}"
    );
}

/// Figure 2: application documents show only a small advantage for the
/// size-aware schemes — GD*(1) ahead of LRU, but by far less than for
/// images.
#[test]
fn constant_cost_application_advantage_is_small() {
    let trace = dfn();
    let s = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    let idx = 1;
    let gd_app = hr(&s, GDSTAR1, Some(DocumentType::Application), idx);
    let lru_app = hr(&s, PolicyKind::Lru, Some(DocumentType::Application), idx);
    assert!(
        gd_app > lru_app,
        "GD*(1) application HR {gd_app:.3} must edge out LRU {lru_app:.3}"
    );
    let app_gap = gd_app - lru_app;
    let img_gap = hr(&s, GDSTAR1, Some(DocumentType::Image), idx)
        - hr(&s, PolicyKind::Lru, Some(DocumentType::Image), idx);
    assert!(
        img_gap > 2.0 * app_gap,
        "image advantage ({img_gap:.3}) must dwarf application advantage ({app_gap:.3})"
    );
}

/// Figure 3: under packet cost GD*(P) wins the overall hit rate at small
/// cache sizes, and does not discriminate large documents the way the
/// constant-cost variant does.
#[test]
fn packet_cost_gdstar_wins_overall_and_keeps_multimedia() {
    let trace = dfn();
    let s = sweep(&trace, PolicyKind::PAPER_PACKET.to_vec());
    for idx in [0usize, 1] {
        let gd = hr(&s, GDSTARP, None, idx);
        for other in [PolicyKind::Lru, PolicyKind::LfuDa, GDSP] {
            assert!(
                gd >= hr(&s, other, None, idx) * 0.999,
                "GD*(P) overall HR {gd:.3} must top {other} at size {idx}"
            );
        }
    }
    // GD*(P) multimedia HR must be far closer to LRU's than GD*(1)'s is.
    let s1 = sweep(&trace, vec![PolicyKind::Lru, GDSTAR1, GDSTARP]);
    let ty = Some(DocumentType::MultiMedia);
    let lru = hr(&s1, PolicyKind::Lru, ty, 0) + hr(&s1, PolicyKind::Lru, ty, 1);
    let gd1 = hr(&s1, GDSTAR1, ty, 0) + hr(&s1, GDSTAR1, ty, 1);
    let gdp = hr(&s1, GDSTARP, ty, 0) + hr(&s1, GDSTARP, ty, 1);
    assert!(
        (lru - gdp) < (lru - gd1),
        "packet cost must shrink the multimedia gap: LRU {lru:.3}, GD*(P) {gdp:.3}, GD*(1) {gd1:.3}"
    );
}

/// Hit rates grow with cache size for every scheme (the log-like growth
/// the paper cites), and all rates are valid fractions.
#[test]
fn hit_rates_grow_with_cache_size_and_stay_valid() {
    let trace = dfn();
    let s = sweep(&trace, PolicyKind::PAPER_CONSTANT.to_vec());
    for policy in s.policies() {
        let series = s.hit_rate_series(policy, None);
        for w in series.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.02,
                "{policy}: hit rate must not collapse with more capacity: {series:?}"
            );
        }
        for &(_, v) in &series {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

/// Section 4.4: on the RTP workload the overall ordering matches DFN
/// (GD*(1) still best overall HR under constant cost), but its margin
/// over GDS(1) shrinks or vanishes.
#[test]
fn rtp_shrinks_gdstar_advantage() {
    let dfn_trace = dfn();
    let rtp_trace = WorkloadProfile::rtp().scaled(SCALE).build_trace(SEED);
    let s_dfn = sweep(&dfn_trace, vec![PolicyKind::Lru, GDS1, GDSTAR1]);
    let s_rtp = sweep(&rtp_trace, vec![PolicyKind::Lru, GDS1, GDSTAR1]);
    let idx = 1;
    // Same headline ordering on both workloads: GD*(1) beats LRU.
    for (name, s) in [("DFN", &s_dfn), ("RTP", &s_rtp)] {
        assert!(
            hr(s, GDSTAR1, None, idx) > hr(s, PolicyKind::Lru, None, idx),
            "{name}: GD*(1) must beat LRU overall"
        );
    }
    // ...but the GD*-vs-GDS margin on image HR shrinks on RTP.
    let margin_dfn = hr(&s_dfn, GDSTAR1, Some(DocumentType::Image), idx)
        - hr(&s_dfn, GDS1, Some(DocumentType::Image), idx);
    let margin_rtp = hr(&s_rtp, GDSTAR1, Some(DocumentType::Image), idx)
        - hr(&s_rtp, GDS1, Some(DocumentType::Image), idx);
    assert!(
        margin_rtp < margin_dfn + 0.005,
        "RTP image-HR margin {margin_rtp:.4} must not exceed DFN margin {margin_dfn:.4}"
    );
}

/// Figure 1: GD*(P) keeps the per-type document mix of the cache close
/// to the request mix, and gives large document types a real byte share;
/// GD*(1) starves them.
#[test]
fn gdstar_packet_adapts_cache_composition() {
    use webcache::core::policy::{BetaMode, GdStar};

    let trace = dfn();
    let capacity = trace.overall_size().scale(0.03);
    let run = |cost: CostModel| {
        Simulator::new(
            Box::new(GdStar::new(cost, BetaMode::default())),
            SimulationConfig::new(capacity).with_occupancy_samples(20),
        )
        .run(&trace)
    };
    let constant = run(CostModel::Constant);
    let packet = run(CostModel::Packet);

    // Document mix tracks request mix for both (documents are dominated
    // by small types either way)...
    let image_req_share = trace.requests_by_type()[DocumentType::Image] as f64 / trace.len() as f64;
    for report in [&constant, &packet] {
        let mean = report.occupancy.mean_document_fraction(DocumentType::Image);
        assert!(
            (mean - image_req_share).abs() < 0.10,
            "{}: image doc fraction {mean:.3} vs request share {image_req_share:.3}",
            report.policy
        );
    }
    // ...but only the packet variant grants multi media + application a
    // substantial byte share.
    let big_types_bytes = |r: &SimulationReport| {
        r.occupancy.mean_byte_fraction(DocumentType::MultiMedia)
            + r.occupancy.mean_byte_fraction(DocumentType::Application)
    };
    assert!(
        big_types_bytes(&packet) > 1.5 * big_types_bytes(&constant),
        "GD*(P) byte share {:.3} vs GD*(1) {:.3}",
        big_types_bytes(&packet),
        big_types_bytes(&constant)
    );
}
