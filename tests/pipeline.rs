//! Cross-crate pipeline tests: the full journeys a downstream user takes
//! through the workspace, exercised end-to-end through the facade crate.

use webcache::core::policy::{BetaMode, GdStar};
use webcache::prelude::*;
use webcache::sim::{simulate_hierarchy, HierarchyConfig, LatencyModel};
use webcache::stats::StackDistances;
use webcache::trace::transform;
use webcache::trace::{format, format_bin, preprocess::preprocess, squid};
use webcache::workload::blend;

fn small_trace() -> Trace {
    WorkloadProfile::dfn().scaled(1.0 / 1024.0).build_trace(77)
}

/// generate → serialize (text and binary) → parse → identical trace →
/// identical characterization.
#[test]
fn serialization_pipeline_preserves_everything() {
    let trace = small_trace();

    let text = format::to_string(&trace);
    let from_text = format::from_str(&text).unwrap();
    assert_eq!(trace, from_text);

    let bytes = format_bin::to_bytes(&trace);
    let from_bin = format_bin::from_bytes(&bytes).unwrap();
    assert_eq!(trace, from_bin);

    let a = TraceCharacterization::measure(&trace);
    let b = TraceCharacterization::measure(&from_bin);
    assert_eq!(a, b);
}

/// Squid log text → parse → preprocess → simulate, all through public
/// API, with deterministic results.
#[test]
fn squid_pipeline_end_to_end() {
    // Fabricate a log whose cacheable remainder is known exactly.
    let mut lines = Vec::new();
    for i in 0..50 {
        lines.push(format!(
            "{}.000 5 client TCP_MISS/200 {} GET http://e.de/doc{}.html - DIRECT/- text/html",
            100 + i,
            1000 + (i % 5) * 100,
            i % 10,
        ));
        if i % 7 == 0 {
            lines.push(format!(
                "{}.500 5 client TCP_MISS/404 10 GET http://e.de/missing - DIRECT/- -",
                100 + i
            ));
        }
    }
    let entries = squid::parse_log(&lines.join("\n")).unwrap();
    let (trace, stats) = preprocess(&entries);
    assert_eq!(stats.output, 50);
    assert_eq!(stats.dropped_status, 8);
    assert_eq!(trace.distinct_documents(), 10);

    let report = Simulator::new(
        PolicyKind::Lru.instantiate(),
        SimulationConfig::new(ByteSize::from_kib(64)).with_warmup_fraction(0.0),
    )
    .run(&trace);
    // 10 docs fit comfortably: everything but size-change misses hits.
    let overall = report.overall();
    assert_eq!(overall.requests, 50);
    assert!(overall.hits >= 30, "hits = {}", overall.hits);
}

/// Transform utilities compose with characterization and simulation.
#[test]
fn transforms_compose_with_analysis() {
    let trace = small_trace();
    let html = transform::filter_by_type(&trace, DocumentType::Html);
    assert!(!html.is_empty());
    let ch = TraceCharacterization::measure(&html);
    assert!((ch.breakdown[DocumentType::Html].total_requests - 1.0).abs() < 1e-9);

    let parts = transform::split_by_type(&trace);
    let total: usize = DocumentType::ALL.iter().map(|&ty| parts[ty].len()).sum();
    assert_eq!(total, trace.len());

    let front = transform::head(&trace, trace.len() / 2);
    let report = Simulator::new(
        PolicyKind::LfuDa.instantiate(),
        SimulationConfig::new(trace.overall_size().scale(0.1)),
    )
    .run(&front);
    assert_eq!(
        report.overall().requests as usize,
        front.len() - front.len() / 10
    );
}

/// Stack-distance prediction agrees with actually simulating LRU on a
/// uniform-size rendering of the stream.
#[test]
fn stack_distance_predicts_uniform_lru() {
    let trace = small_trace();
    // Re-render with uniform 1 kB sizes so capacity maps to doc count.
    let uniform: Trace = trace
        .iter()
        .map(|r| Request::new(r.timestamp, r.doc, r.doc_type, ByteSize::from_kib(1)))
        .collect();
    let stack = StackDistances::measure(&uniform, None);
    for capacity_docs in [50usize, 500, 5_000] {
        let predicted = stack.lru_hit_rate(capacity_docs);
        let report = Simulator::new(
            PolicyKind::Lru.instantiate(),
            SimulationConfig::new(ByteSize::from_kib(capacity_docs as u64))
                .with_warmup_fraction(0.0),
        )
        .run(&uniform);
        let simulated = report.overall().hit_rate();
        assert!(
            (predicted - simulated).abs() < 1e-9,
            "capacity {capacity_docs}: predicted {predicted}, simulated {simulated}"
        );
    }
}

/// The hierarchy, latency model and profile blending compose.
#[test]
fn extensions_compose() {
    let mid = blend(&WorkloadProfile::dfn(), &WorkloadProfile::rtp(), 0.5).scaled(1.0 / 1024.0);
    let trace = mid.build_trace(5);

    let hierarchy = simulate_hierarchy(
        &trace,
        HierarchyConfig::new(
            2,
            trace.overall_size().scale(0.02),
            trace.overall_size().scale(0.10),
        ),
    );
    assert!(hierarchy.combined_hit_rate() > 0.0);
    assert!(hierarchy.combined_hit_rate() <= 1.0);

    let single = Simulator::new(
        PolicyKind::GdStar(CostModel::Constant).instantiate(),
        SimulationConfig::new(trace.overall_size().scale(0.02)),
    )
    .run(&trace);
    let latency = LatencyModel::campus_2001().estimate(&single);
    assert!(latency.savings() > 0.0);
    assert!(latency.speedup() > 1.0);
}

/// GD* fixed-β=1 equals GDSF through the full simulator, not just at the
/// policy level.
#[test]
fn gdsf_equals_gdstar_beta_one_end_to_end() {
    let trace = small_trace();
    let capacity = trace.overall_size().scale(0.05);
    let gdstar = Simulator::new(
        Box::new(GdStar::new(CostModel::Packet, BetaMode::Fixed(1.0))),
        SimulationConfig::new(capacity),
    )
    .run(&trace);
    let gdsf = Simulator::new(
        PolicyKind::Gdsf(CostModel::Packet).instantiate(),
        SimulationConfig::new(capacity),
    )
    .run(&trace);
    assert_eq!(gdstar.overall().hits, gdsf.overall().hits);
    assert_eq!(gdstar.overall().bytes_hit, gdsf.overall().bytes_hit);
}

/// Determinism across the whole stack: same seeds, same results,
/// including the parallel sweep.
#[test]
fn full_stack_determinism() {
    let run = || {
        let trace = WorkloadProfile::rtp().scaled(1.0 / 1024.0).build_trace(3);
        let capacities = vec![
            trace.overall_size().scale(0.02),
            trace.overall_size().scale(0.10),
        ];
        CacheSizeSweep::new(PolicyKind::PAPER_PACKET.to_vec(), capacities).run(&trace)
    };
    assert_eq!(run(), run());
}
