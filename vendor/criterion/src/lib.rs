//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Throughput`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — backed by a simple wall-clock harness: per sample it
//! runs enough iterations to cross a minimum measurement window, then
//! reports the median sample.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparison to
//! saved baselines) is out of scope; output is one line per benchmark.
//!
//! If the real `criterion` becomes available, delete `vendor/` and the
//! `[patch.crates-io]` table in the workspace `Cargo.toml`.

use std::time::{Duration, Instant};

/// Re-export so `std::hint::black_box` is reachable as `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_window: Duration::from_millis(2),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stand-in accepts anything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let window = self.measurement_window;
        run_benchmark(&id.into(), None, sample_size, window, f);
        self
    }

    /// Upstream prints the summary here; the stand-in prints per-bench.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Upstream bounds total measurement time; the stand-in ignores it.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let window = self.criterion.measurement_window;
        run_benchmark(&full, self.throughput, sample_size, window, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_window: Duration,
    /// Median seconds per iteration, filled by `iter`.
    result: Option<f64>,
}

impl Bencher {
    /// Measures `f`, keeping the median of the configured samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: how many iterations fill the measurement window?
        let mut reps: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..reps {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_window || reps >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.measurement_window.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64 + 1
            };
            reps = reps.saturating_mul(grow.clamp(2, 16));
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..reps {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / reps as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_benchmark(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    window: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_window: window,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(secs) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.0} elem/s", n as f64 / secs)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: {:.0} B/s", n as f64 / secs)
                }
                None => String::new(),
            };
            println!("{id:<40} time: {}{rate}", format_time(secs));
        }
        None => println!("{id:<40} (no measurement — Bencher::iter never called)"),
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
