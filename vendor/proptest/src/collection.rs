//! Collection strategies (`prop::collection`).

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` strategy; sizes are best-effort (duplicates are retried a
/// bounded number of times, as upstream does).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
