//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range / tuple / regex-string
//! strategies, `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! `prop::option::of`, the `proptest!` / `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros and a [`test_runner::TestRunner`].
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! as generated), and case generation is seeded deterministically from the
//! test's module path and name so failures reproduce across runs.
//!
//! If the real `proptest` becomes available, delete `vendor/` and the
//! `[patch.crates-io]` table in the workspace `Cargo.toml`.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirror of the `prop` module re-exported by the upstream prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Defines property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(pat in strategy,
/// ...) { body }` items carrying their own `#[test]` attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new_seeded(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left, right, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    left
                ),
            ));
        }
    }};
}

/// Rejects the current case (does not count it as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
