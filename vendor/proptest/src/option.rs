//! `Option` strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Produces `Some` from the inner strategy about 3/4 of the time,
/// `None` otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
