//! Sampling strategies (`prop::sample`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects one of the given values.
pub fn select<T: Clone + Debug + 'static>(values: impl Into<Vec<T>>) -> Select<T> {
    let values = values.into();
    assert!(!values.is_empty(), "select from empty list");
    Select { values }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.values.len() as u64) as usize;
        self.values[idx].clone()
    }
}
