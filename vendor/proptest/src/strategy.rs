//! The [`Strategy`] trait and primitive strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values for property tests.
///
/// Unlike upstream there is no value tree / shrinking; a strategy simply
/// produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `predicate` (retrying a bounded
    /// number of times).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    /// Boxes the strategy as a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.whence);
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                start + u * (end - start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}
