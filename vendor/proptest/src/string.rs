//! Regex-style string strategies.
//!
//! Upstream proptest treats a `&str` as a regex describing the strings to
//! generate. This stand-in implements the subset of that syntax the
//! workspace's tests use: literals, `[...]` classes with ranges, `(...)`
//! groups with `|` alternation, `{m,n}` / `{n}` / `*` / `+` / `?`
//! quantifiers, `.` and the `\PC` ("any non-control character") escape.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive char ranges; a singleton char is `(c, c)`.
    Class(Vec<(char, char)>),
    /// `\PC` or `.`: any printable, non-control character.
    AnyPrintable,
    /// Alternation of sequences.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, usize, usize),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex strategy {:?}: {what}", self.pattern)
    }

    fn parse_alternatives(&mut self) -> Vec<Vec<Node>> {
        let mut alternatives = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alternatives.push(self.parse_seq());
        }
        alternatives
    }

    fn parse_seq(&mut self) -> Vec<Node> {
        let mut seq = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.parse_atom();
            seq.push(self.parse_quantified(atom));
        }
        seq
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next().expect("atom") {
            '(' => {
                let alternatives = self.parse_alternatives();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                Node::Group(alternatives)
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::AnyPrintable,
            c => Node::Literal(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.chars.next() {
            Some('P') => {
                // Only the \PC ("not a control character") category is used.
                match self.chars.next() {
                    Some('C') => Node::AnyPrintable,
                    Some('{') => {
                        let mut name = String::new();
                        for c in self.chars.by_ref() {
                            if c == '}' {
                                break;
                            }
                            name.push(c);
                        }
                        if name == "C" || name == "Cc" {
                            Node::AnyPrintable
                        } else {
                            self.fail("unsupported \\P category")
                        }
                    }
                    _ => self.fail("unsupported \\P escape"),
                }
            }
            Some('d') => Node::Class(vec![('0', '9')]),
            Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
            Some('n') => Node::Literal('\n'),
            Some('t') => Node::Literal('\t'),
            Some('r') => Node::Literal('\r'),
            Some(c @ ('.' | '\\' | '/' | '-' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '*'
            | '+' | '?' | '^' | '$')) => Node::Literal(c),
            _ => self.fail("unsupported escape"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.fail("negated classes are not supported");
        }
        loop {
            let c = match self.chars.next() {
                None => self.fail("unclosed class"),
                Some(']') => break,
                Some('\\') => match self.parse_escape() {
                    Node::Literal(c) => c,
                    Node::Class(mut r) => {
                        ranges.append(&mut r);
                        continue;
                    }
                    _ => self.fail("unsupported class escape"),
                },
                Some(c) => c,
            };
            // `a-z` range, unless `-` is the final literal (as in `[._-]`).
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next();
                match lookahead.peek() {
                    Some(&']') | None => ranges.push((c, c)),
                    Some(_) => {
                        self.chars.next();
                        let end = match self.chars.next() {
                            Some('\\') => match self.parse_escape() {
                                Node::Literal(e) => e,
                                _ => self.fail("unsupported range end"),
                            },
                            Some(e) => e,
                            None => self.fail("unclosed class"),
                        };
                        if end < c {
                            self.fail("inverted class range");
                        }
                        ranges.push((c, end));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class(ranges)
    }

    fn parse_quantified(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.fail("unclosed quantifier"),
                    }
                }
                let (min, max) = match spec.split_once(',') {
                    None => {
                        let n = spec.parse().unwrap_or_else(|_| self.fail("bad quantifier"));
                        (n, n)
                    }
                    Some((lo, "")) => {
                        let lo: usize =
                            lo.parse().unwrap_or_else(|_| self.fail("bad quantifier"));
                        (lo, lo + 8)
                    }
                    Some((lo, hi)) => (
                        lo.parse().unwrap_or_else(|_| self.fail("bad quantifier")),
                        hi.parse().unwrap_or_else(|_| self.fail("bad quantifier")),
                    ),
                };
                if max < min {
                    self.fail("inverted quantifier");
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            _ => atom,
        }
    }
}

/// A sprinkling of non-ASCII, non-control characters so `\PC` exercises
/// multi-byte UTF-8 in parsers.
const UNICODE_SAMPLE: &[char] = &['é', 'ß', 'λ', 'ж', '中', '한', '→', '€', '𝔘', '🙂'];

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let idx = rng.below(ranges.len() as u64) as usize;
            let (lo, hi) = ranges[idx];
            let span = hi as u32 - lo as u32 + 1;
            let v = lo as u32 + rng.below(u64::from(span)) as u32;
            out.push(char::from_u32(v).expect("class range stays in valid chars"));
        }
        Node::AnyPrintable => {
            if rng.below(10) == 0 {
                let idx = rng.below(UNICODE_SAMPLE.len() as u64) as usize;
                out.push(UNICODE_SAMPLE[idx]);
            } else {
                out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii"));
            }
        }
        Node::Group(alternatives) => {
            let idx = rng.below(alternatives.len() as u64) as usize;
            for n in &alternatives[idx] {
                generate_node(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let len = min + rng.below((max - min) as u64 + 1) as usize;
            for _ in 0..len {
                generate_node(inner, rng, out);
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut parser = Parser::new(self);
        let alternatives = parser.parse_alternatives();
        if parser.chars.next().is_some() {
            parser.fail("trailing input (unbalanced ')'?)");
        }
        let mut out = String::new();
        let idx = rng.below(alternatives.len() as u64) as usize;
        for node in &alternatives[idx] {
            generate_node(node, rng, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen100(pattern: &'static str) -> Vec<String> {
        let mut rng = TestRng::seed_from_u64(1);
        (0..100).map(|_| pattern.generate(&mut rng)).collect()
    }

    #[test]
    fn printable_any() {
        for s in gen100("\\PC{0,200}") {
            assert!(s.chars().count() <= 200);
            assert!(!s.chars().any(char::is_control), "control char in {s:?}");
        }
    }

    #[test]
    fn classes_and_literals() {
        for s in gen100("http://[a-z]{1,10}\\.de/[a-zA-Z0-9_.-]{0,30}") {
            assert!(s.starts_with("http://"), "{s:?}");
            assert!(s.contains(".de/"), "{s:?}");
        }
    }

    #[test]
    fn groups_repeat() {
        for s in gen100("(/[a-zA-Z0-9._-]{0,12}){0,4}") {
            let segments = s.split('/').count().saturating_sub(1);
            assert!(segments <= 4, "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for s in gen100("[a-zA-Z][a-zA-Z0-9.-]{0,20}") {
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            for c in s.chars().skip(1) {
                assert!(c.is_ascii_alphanumeric() || c == '.' || c == '-', "{s:?}");
            }
        }
    }
}
