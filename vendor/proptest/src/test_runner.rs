//! The case-generation loop and its RNG.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Deterministic generator used by strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a 64-bit value via SplitMix64.
    pub fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration (upstream's `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Generates inputs and runs the test body `config.cases` times.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed default seed.
    pub fn new(config: Config) -> Self {
        Self::new_seeded(config, "proptest")
    }

    /// A runner seeded from `name` (typically module path + test name), so
    /// each test gets a distinct but reproducible stream.
    pub fn new_seeded(config: Config, name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(hash),
        }
    }

    /// Runs `test` against `config.cases` generated inputs.
    ///
    /// Returns `Err(message)` describing the first failing input; there is
    /// no shrinking, the input is reported exactly as generated.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let shown = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many rejected cases ({rejected}) after {passed} passed"
                        ));
                    }
                }
                Ok(Err(TestCaseError::Fail(message))) => {
                    return Err(format!(
                        "proptest case failed after {passed} passing case(s): {message}\n\
                         input: {shown}"
                    ));
                }
                Err(panic) => {
                    let message = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    return Err(format!(
                        "proptest case panicked after {passed} passing case(s): {message}\n\
                         input: {shown}"
                    ));
                }
            }
        }
        Ok(())
    }
}
