//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `rand` API the workspace uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but statistically sound, which is all
//! the workspace's seeded generators and calibration tests rely on.
//! Deterministic for a given seed, like upstream.
//!
//! If the real `rand` becomes available, delete `vendor/` and the
//! `[patch.crates-io]` table in the workspace `Cargo.toml`.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: the two word-sized generators.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce (stand-in for the `Standard`
/// distribution).
pub trait StandardValue {
    /// Samples a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (stand-in for sampling `Standard`).
    fn gen<T: StandardValue>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of upstream's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, as upstream does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Different stream than upstream's ChaCha12 `StdRng`, but the
    /// workspace only relies on determinism-per-seed and statistical
    /// quality, not on a specific stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Upstream's `SmallRng` — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.005..0.045);
            assert!((0.005..0.045).contains(&v));
            let i = rng.gen_range(3u64..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }
}
