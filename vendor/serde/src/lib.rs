//! Offline stand-in for `serde`.
//!
//! This workspace's build environment has no access to crates.io, so the
//! real `serde` cannot be fetched. Nothing in the workspace actually
//! serializes data (there is no `serde_json`/`bincode` dependency); the
//! `#[derive(Serialize, Deserialize)]` attributes only mark types as
//! serializable for downstream consumers. This crate keeps those derives
//! and bounds compiling by providing the two traits as blanket-implemented
//! markers and re-exporting no-op derive macros.
//!
//! If the real `serde` becomes available, delete `vendor/` and the
//! `[patch.crates-io]` table in the workspace `Cargo.toml`; no source
//! changes are required.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all
/// types, so any `T: Serialize` bound is satisfied.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T {}

/// Mirrors `serde::de` far enough for common bounds.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` far enough for common bounds.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
