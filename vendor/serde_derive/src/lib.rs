//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The stand-in `serde` crate blanket-implements both traits, so the
//! derives have nothing to emit — they only need to exist (and accept the
//! `#[serde(...)]` helper attribute) for `#[derive(Serialize)]` to parse.

use proc_macro::TokenStream;

/// No-op: the stand-in `Serialize` trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op: the stand-in `Deserialize` trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
